#include "func/regfile.h"

#include "bfp/float16.h"

namespace bw {

VectorRegFile::VectorRegFile(unsigned entries, unsigned native_dim,
                             std::string name)
    : entries_(entries), nativeDim_(native_dim), name_(std::move(name)),
      data_(static_cast<size_t>(entries) * native_dim, 0.0f)
{
}

void
VectorRegFile::checkRange(uint32_t addr, uint32_t count) const
{
    if (static_cast<uint64_t>(addr) + count > entries_) {
        BW_FATAL("%s: access [%u, %u) exceeds %u entries", name_.c_str(),
                 addr, addr + count, entries_);
    }
}

FVec
VectorRegFile::read(uint32_t addr, uint32_t count) const
{
    checkRange(addr, count);
    auto begin = data_.begin() + static_cast<size_t>(addr) * nativeDim_;
    return FVec(begin, begin + static_cast<size_t>(count) * nativeDim_);
}

void
VectorRegFile::write(uint32_t addr, std::span<const float> data)
{
    BW_ASSERT(data.size() % nativeDim_ == 0,
              "%s: write of %zu elements is not native-vector aligned",
              name_.c_str(), data.size());
    uint32_t count = static_cast<uint32_t>(data.size() / nativeDim_);
    checkRange(addr, count);
    float *dst = data_.data() + static_cast<size_t>(addr) * nativeDim_;
    for (size_t i = 0; i < data.size(); ++i)
        dst[i] = roundToHalf(data[i]);
}

void
VectorRegFile::clear()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

QuantTile::QuantTile(const FMat &tile, const BfpFormat &fmt)
{
    BW_ASSERT(tile.rows() == tile.cols(),
              "native tiles are square (%zux%zu given)", tile.rows(),
              tile.cols());
    rows_.reserve(tile.rows());
    for (size_t r = 0; r < tile.rows(); ++r)
        rows_.emplace_back(tile.row(r), fmt);
}

FMat
QuantTile::dequant() const
{
    FMat out(rows_.size(), rows_.size());
    for (size_t r = 0; r < rows_.size(); ++r) {
        auto vals = rows_[r].dequantAll();
        std::copy(vals.begin(), vals.end(), out.row(r).begin());
    }
    return out;
}

MatrixRegFile::MatrixRegFile(unsigned tiles, unsigned native_dim)
    : tiles_(tiles), nativeDim_(native_dim), data_(tiles)
{
}

void
MatrixRegFile::write(uint32_t addr, QuantTile tile)
{
    if (addr >= tiles_)
        BW_FATAL("MRF: write to entry %u exceeds %u tiles", addr, tiles_);
    BW_ASSERT(tile.dim() == nativeDim_);
    data_[addr] = std::move(tile);
}

const QuantTile &
MatrixRegFile::read(uint32_t addr) const
{
    if (addr >= tiles_)
        BW_FATAL("MRF: read of entry %u exceeds %u tiles", addr, tiles_);
    if (!data_[addr].valid())
        BW_FATAL("MRF: read of entry %u before any write (uninitialized "
                 "model weights)", addr);
    return data_[addr];
}

bool
MatrixRegFile::isWritten(uint32_t addr) const
{
    return addr < tiles_ && data_[addr].valid();
}

DramStore::DramStore(uint64_t capacity_bytes, unsigned native_dim)
    : capacityBytes_(capacity_bytes), nativeDim_(native_dim)
{
    // Entry-granular model: bound entry counts by capacity assuming
    // 2 bytes/element storage.
    uint64_t vec_bytes = static_cast<uint64_t>(native_dim) * 2;
    uint64_t max_vecs = std::min<uint64_t>(capacity_bytes / vec_bytes,
                                           1ull << 22);
    uint64_t tile_bytes = vec_bytes * native_dim;
    uint64_t max_tiles = std::min<uint64_t>(capacity_bytes / tile_bytes,
                                            1ull << 16);
    vectors_.resize(max_vecs);
    tiles_.resize(max_tiles);
}

FVec
DramStore::readVector(uint32_t addr, uint32_t count) const
{
    if (static_cast<uint64_t>(addr) + count > vectors_.size())
        BW_FATAL("DRAM: vector read [%u, %u) out of range", addr,
                 addr + count);
    FVec out;
    out.reserve(static_cast<size_t>(count) * nativeDim_);
    for (uint32_t i = 0; i < count; ++i) {
        const FVec &v = vectors_[addr + i];
        if (v.empty()) {
            out.insert(out.end(), nativeDim_, 0.0f);
        } else {
            out.insert(out.end(), v.begin(), v.end());
        }
    }
    return out;
}

void
DramStore::writeVector(uint32_t addr, std::span<const float> data)
{
    BW_ASSERT(data.size() % nativeDim_ == 0);
    uint32_t count = static_cast<uint32_t>(data.size() / nativeDim_);
    if (static_cast<uint64_t>(addr) + count > vectors_.size())
        BW_FATAL("DRAM: vector write [%u, %u) out of range", addr,
                 addr + count);
    for (uint32_t i = 0; i < count; ++i) {
        vectors_[addr + i].assign(data.begin() + i * nativeDim_,
                                  data.begin() + (i + 1) * nativeDim_);
    }
}

const FMat &
DramStore::readTile(uint32_t addr) const
{
    if (addr >= tiles_.size() || tiles_[addr].empty())
        BW_FATAL("DRAM: tile read of %u (unwritten or out of range)", addr);
    return tiles_[addr];
}

void
DramStore::writeTile(uint32_t addr, FMat tile)
{
    if (addr >= tiles_.size())
        BW_FATAL("DRAM: tile write of %u out of range", addr);
    BW_ASSERT(tile.rows() == nativeDim_ && tile.cols() == nativeDim_);
    tiles_[addr] = std::move(tile);
}

void
NetQueues::pushInputVector(FVec v)
{
    BW_ASSERT(v.size() == nativeDim_,
              "NetQ input must be one native vector (%u elements), got %zu",
              nativeDim_, v.size());
    in_.push_back(std::move(v));
}

void
NetQueues::pushInputTile(FMat tile)
{
    BW_ASSERT(tile.rows() == nativeDim_ && tile.cols() == nativeDim_);
    inTiles_.push_back(std::move(tile));
}

FVec
NetQueues::popInput(uint32_t count)
{
    if (in_.size() < count)
        BW_FATAL("NetQ: v_rd of %u vectors but only %zu queued (input "
                 "underrun)", count, in_.size());
    FVec out;
    out.reserve(static_cast<size_t>(count) * nativeDim_);
    for (uint32_t i = 0; i < count; ++i) {
        out.insert(out.end(), in_.front().begin(), in_.front().end());
        in_.pop_front();
    }
    return out;
}

FMat
NetQueues::popInputTile()
{
    if (inTiles_.empty())
        BW_FATAL("NetQ: m_rd with no queued tile");
    FMat t = std::move(inTiles_.front());
    inTiles_.pop_front();
    return t;
}

void
NetQueues::pushOutput(FVec v)
{
    BW_ASSERT(v.size() == nativeDim_);
    out_.push_back(std::move(v));
}

FVec
NetQueues::popOutput(uint32_t count)
{
    if (out_.size() < count)
        BW_FATAL("NetQ: host pop of %u vectors but only %zu queued", count,
                 out_.size());
    FVec res;
    res.reserve(static_cast<size_t>(count) * nativeDim_);
    for (uint32_t i = 0; i < count; ++i) {
        res.insert(res.end(), out_.front().begin(), out_.front().end());
        out_.pop_front();
    }
    return res;
}

} // namespace bw
