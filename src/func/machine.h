/**
 * @file
 * The functional (architectural) simulator: executes BW programs with
 * full arithmetic fidelity — BFP-quantized matrix-vector products,
 * float16 point-wise operations — against the architectural state
 * (VRFs, MRF, DRAM, network queues, scalar control registers).
 *
 * The functional machine defines the ISA's semantics; the timing
 * simulator (bw::timing) models the same programs' performance. Tests
 * cross-check the functional machine against float reference models.
 */

#ifndef BW_FUNC_MACHINE_H
#define BW_FUNC_MACHINE_H

#include <memory>

#include "arch/npu_config.h"
#include "func/regfile.h"
#include "isa/program.h"

namespace bw {

/** Architectural simulator for one BW NPU instance. */
class FuncMachine
{
  public:
    explicit FuncMachine(const NpuConfig &cfg);

    const NpuConfig &config() const { return cfg_; }

    // --- Host-side model/state loading. ---

    /**
     * Quantize and pin an N x N float tile at MRF entry @p addr
     * (the toolflow's weight-initialization path, bypassing NetQ).
     */
    void loadMrfTile(uint32_t addr, const FMat &tile);

    /** Write a host vector (multiple of N elements) into a VRF. */
    void loadVrf(MemId vrf, uint32_t addr, std::span<const float> data);

    /** Write a host vector into the DRAM vector region. */
    void loadDramVector(uint32_t addr, std::span<const float> data);

    /** Write a float tile into the DRAM tile region. */
    void loadDramTile(uint32_t addr, const FMat &tile);

    /** Push one logical input vector (multiple of N) into NetQ. */
    void pushInput(std::span<const float> data);

    /** Push a native tile into NetQ for m_rd initialization. */
    void pushInputTile(const FMat &tile);

    /** Pop @p native_vecs worth of output from NetQ. */
    FVec popOutput(uint32_t native_vecs);

    size_t outputDepth() const { return net_.outputDepth(); }

    /** Read back VRF contents (tests/debug). */
    FVec peekVrf(MemId vrf, uint32_t addr, uint32_t count = 1) const;

    /** Dequantized view of an MRF tile (tests/debug). */
    FMat peekMrfTile(uint32_t addr) const;

    // --- Execution. ---

    /**
     * Execute the whole program once. Chains run in program order;
     * scalar-register state persists across run() calls, as do all
     * memories (so a per-timestep program can be replayed).
     */
    void run(const Program &prog);

    /** Execute the program @p iterations times (RNN timestep replay). */
    void run(const Program &prog, unsigned iterations);

    /** Current mega-SIMD scaling registers. */
    uint32_t rows() const { return rows_; }
    uint32_t cols() const { return cols_; }

    /** Reset scalar registers and VRF/queue state (keeps MRF + DRAM). */
    void resetDynamicState();

  private:
    void execChain(const Program &prog, const Chain &c);
    FVec readSource(const Instruction &inst, uint32_t width,
                    uint32_t offset = 0);
    void writeDest(const Instruction &inst, const FVec &value,
                   uint32_t offset = 0);
    FVec execMvMul(const Instruction &inst, const FVec &input,
                   uint32_t rows, uint32_t cols);
    FVec execPointwise(const Instruction &inst, const FVec &value,
                       uint32_t width, uint32_t operand_offset = 0);

    VectorRegFile &vrf(MemId id);
    const VectorRegFile &vrf(MemId id) const;

    NpuConfig cfg_;
    VectorRegFile ivrf_;
    VectorRegFile asvrf_;
    VectorRegFile mulvrf_;
    MatrixRegFile mrf_;
    DramStore dram_;
    NetQueues net_;
    uint32_t rows_ = 1;
    uint32_t cols_ = 1;
};

} // namespace bw

#endif // BW_FUNC_MACHINE_H
