#include "func/machine.h"

#include <cmath>

#include "bfp/float16.h"
#include "isa/validate.h"

namespace bw {

FuncMachine::FuncMachine(const NpuConfig &cfg)
    : cfg_(cfg),
      ivrf_(cfg.initialVrfSize, cfg.nativeDim, "InitialVrf"),
      asvrf_(cfg.addSubVrfSize, cfg.nativeDim, "AddSubVrf"),
      mulvrf_(cfg.multiplyVrfSize, cfg.nativeDim, "MultiplyVrf"),
      mrf_(cfg.mrfEntries(), cfg.nativeDim),
      dram_(cfg.dramBytes, cfg.nativeDim),
      net_(cfg.nativeDim)
{
    cfg_.validate();
}

VectorRegFile &
FuncMachine::vrf(MemId id)
{
    switch (id) {
      case MemId::InitialVrf: return ivrf_;
      case MemId::AddSubVrf: return asvrf_;
      case MemId::MultiplyVrf: return mulvrf_;
      default: BW_PANIC("%s is not a VRF", memIdName(id));
    }
}

const VectorRegFile &
FuncMachine::vrf(MemId id) const
{
    return const_cast<FuncMachine *>(this)->vrf(id);
}

void
FuncMachine::loadMrfTile(uint32_t addr, const FMat &tile)
{
    if (tile.rows() != cfg_.nativeDim || tile.cols() != cfg_.nativeDim) {
        BW_FATAL("MRF tile must be %ux%u, got %zux%zu", cfg_.nativeDim,
                 cfg_.nativeDim, tile.rows(), tile.cols());
    }
    mrf_.write(addr, QuantTile(tile, cfg_.precision));
}

void
FuncMachine::loadVrf(MemId id, uint32_t addr, std::span<const float> data)
{
    vrf(id).write(addr, data);
}

void
FuncMachine::loadDramVector(uint32_t addr, std::span<const float> data)
{
    dram_.writeVector(addr, data);
}

void
FuncMachine::loadDramTile(uint32_t addr, const FMat &tile)
{
    dram_.writeTile(addr, tile);
}

void
FuncMachine::pushInput(std::span<const float> data)
{
    BW_ASSERT(data.size() % cfg_.nativeDim == 0,
              "input must be a whole number of native vectors");
    for (size_t i = 0; i < data.size(); i += cfg_.nativeDim) {
        net_.pushInputVector(
            FVec(data.begin() + i, data.begin() + i + cfg_.nativeDim));
    }
}

void
FuncMachine::pushInputTile(const FMat &tile)
{
    net_.pushInputTile(tile);
}

FVec
FuncMachine::popOutput(uint32_t native_vecs)
{
    return net_.popOutput(native_vecs);
}

FVec
FuncMachine::peekVrf(MemId id, uint32_t addr, uint32_t count) const
{
    return vrf(id).read(addr, count);
}

FMat
FuncMachine::peekMrfTile(uint32_t addr) const
{
    return mrf_.read(addr).dequant();
}

void
FuncMachine::resetDynamicState()
{
    ivrf_.clear();
    asvrf_.clear();
    mulvrf_.clear();
    rows_ = 1;
    cols_ = 1;
}

FVec
FuncMachine::readSource(const Instruction &inst, uint32_t width,
                        uint32_t offset)
{
    switch (inst.mem) {
      case MemId::InitialVrf:
      case MemId::AddSubVrf:
      case MemId::MultiplyVrf:
        return vrf(inst.mem).read(inst.addr + offset, width);
      case MemId::NetQ:
        return net_.popInput(width);
      case MemId::Dram:
        return dram_.readVector(inst.addr + offset, width);
      default:
        BW_FATAL("v_rd cannot source from %s", memIdName(inst.mem));
    }
}

void
FuncMachine::writeDest(const Instruction &inst, const FVec &value,
                       uint32_t offset)
{
    switch (inst.mem) {
      case MemId::InitialVrf:
      case MemId::AddSubVrf:
      case MemId::MultiplyVrf:
        vrf(inst.mem).write(inst.addr + offset, value);
        return;
      case MemId::NetQ:
        for (size_t i = 0; i < value.size(); i += cfg_.nativeDim) {
            net_.pushOutput(FVec(value.begin() + i,
                                 value.begin() + i + cfg_.nativeDim));
        }
        return;
      case MemId::Dram:
        dram_.writeVector(inst.addr + offset, value);
        return;
      default:
        BW_FATAL("v_wr cannot sink to %s", memIdName(inst.mem));
    }
}

FVec
FuncMachine::execMvMul(const Instruction &inst, const FVec &input,
                       uint32_t rows, uint32_t cols)
{
    unsigned n = cfg_.nativeDim;
    BW_ASSERT(input.size() == static_cast<size_t>(cols) * n,
              "mv_mul input is %zu elements, expected %u", input.size(),
              cols * n);

    // Quantize the input activation per native-vector block, as the
    // hardware does at the MVM boundary.
    std::vector<BfpBlock> in_blocks;
    in_blocks.reserve(cols);
    for (uint32_t c = 0; c < cols; ++c) {
        std::span<const float> blk(input.data() + static_cast<size_t>(c) * n,
                                   n);
        in_blocks.emplace_back(blk, cfg_.precision);
    }

    // Tiled matrix: entry (r, c) lives at MRF[addr + r*cols + c].
    // Accumulation across column tiles happens in float32 in the
    // add-reduction unit; the result rounds to float16 entering the MFUs.
    FVec out(static_cast<size_t>(rows) * n, 0.0f);
    for (uint32_t r = 0; r < rows; ++r) {
        for (unsigned row_in_tile = 0; row_in_tile < n; ++row_in_tile) {
            double acc = 0.0;
            for (uint32_t c = 0; c < cols; ++c) {
                const QuantTile &tile = mrf_.read(inst.addr + r * cols + c);
                acc += BfpBlock::dot(tile.row(row_in_tile), in_blocks[c]);
            }
            out[static_cast<size_t>(r) * n + row_in_tile] =
                roundToHalf(static_cast<float>(acc));
        }
    }
    return out;
}

FVec
FuncMachine::execPointwise(const Instruction &inst, const FVec &value,
                           uint32_t width, uint32_t operand_offset)
{
    unsigned n = cfg_.nativeDim;
    BW_ASSERT(value.size() == static_cast<size_t>(width) * n);

    FVec operand;
    if (opcodeInfo(inst.op).hasIndex && inst.op != Opcode::MvMul) {
        // Secondary operand from the unit's dedicated VRF.
        MemId src = opcodeInfo(inst.op).unit == UnitClass::MfuMul
                        ? MemId::MultiplyVrf
                        : MemId::AddSubVrf;
        operand = vrf(src).read(inst.addr + operand_offset, width);
    }

    FVec out(value.size());
    for (size_t i = 0; i < value.size(); ++i) {
        float a = value[i];
        float r = 0.0f;
        switch (inst.op) {
          case Opcode::VvAdd: r = a + operand[i]; break;
          case Opcode::VvASubB: r = a - operand[i]; break;
          case Opcode::VvBSubA: r = operand[i] - a; break;
          case Opcode::VvMax: r = std::max(a, operand[i]); break;
          case Opcode::VvMul: r = a * operand[i]; break;
          case Opcode::VRelu: r = a > 0.0f ? a : 0.0f; break;
          case Opcode::VSigm: r = 1.0f / (1.0f + std::exp(-a)); break;
          case Opcode::VTanh: r = std::tanh(a); break;
          default: BW_PANIC("%s is not a point-wise op",
                            opcodeName(inst.op));
        }
        out[i] = roundToHalf(r);
    }
    return out;
}

void
FuncMachine::execChain(const Program &prog, const Chain &c)
{
    if (c.kind == Chain::Kind::Scalar) {
        const Instruction &inst = prog[c.first];
        auto reg = static_cast<ScalarReg>(inst.addr);
        if (reg == ScalarReg::Rows)
            rows_ = static_cast<uint32_t>(inst.value);
        else if (reg == ScalarReg::Cols)
            cols_ = static_cast<uint32_t>(inst.value);
        return;
    }

    if (c.kind == Chain::Kind::Matrix) {
        const Instruction &rd = prog[c.first];
        const Instruction &wr = prog[c.first + 1];
        uint32_t tiles = c.rows * c.cols;
        for (uint32_t t = 0; t < tiles; ++t) {
            FMat tile = rd.mem == MemId::NetQ
                            ? net_.popInputTile()
                            : dram_.readTile(rd.addr + t);
            if (wr.mem == MemId::MatrixRf)
                mrf_.write(wr.addr + t, QuantTile(tile, cfg_.precision));
            else
                dram_.writeTile(wr.addr + t, std::move(tile));
        }
        return;
    }

    // Vector chain; the configuration repeats iters times with
    // v_rd/v_wr addresses advancing by their width each repetition.
    uint32_t in_width = c.hasMvMul ? c.cols : c.rows;
    uint32_t out_width = c.rows;
    for (uint32_t it = 0; it < c.iters; ++it) {
        FVec value;
        for (size_t i = c.first; i < c.end(); ++i) {
            const Instruction &inst = prog[i];
            switch (inst.op) {
              case Opcode::VRd:
                value = readSource(inst, in_width, it * in_width);
                break;
              case Opcode::MvMul:
                value = execMvMul(inst, value, c.rows, c.cols);
                break;
              case Opcode::VWr:
                BW_ASSERT(value.size() ==
                          static_cast<size_t>(out_width) * cfg_.nativeDim,
                          "chain value width mismatch at v_wr");
                writeDest(inst, value, it * out_width);
                break;
              default:
                value = execPointwise(inst, value, out_width,
                                      c.strideOperands ? it * out_width
                                                       : 0);
                break;
            }
        }
    }
}

void
FuncMachine::run(const Program &prog)
{
    checkProgram(prog, cfg_);
    for (const Chain &c : prog.chains())
        execChain(prog, c);
}

void
FuncMachine::run(const Program &prog, unsigned iterations)
{
    checkProgram(prog, cfg_);
    auto chains = prog.chains();
    for (unsigned it = 0; it < iterations; ++it) {
        for (const Chain &c : chains)
            execChain(prog, c);
    }
}

} // namespace bw
