/**
 * @file
 * Architectural storage of the functional simulator: vector register
 * files (native-vector entries, float16 storage semantics), the matrix
 * register file (BFP-quantized native tiles), DRAM and network queues.
 */

#ifndef BW_FUNC_REGFILE_H
#define BW_FUNC_REGFILE_H

#include <deque>
#include <vector>

#include "bfp/bfp.h"
#include "common/logging.h"
#include "tensor/tensor.h"

namespace bw {

/**
 * A vector register file: @p entries native vectors of @p native_dim
 * elements. Values are stored with float16 rounding applied on write,
 * matching the hardware's half-precision vector datapath.
 */
class VectorRegFile
{
  public:
    VectorRegFile(unsigned entries, unsigned native_dim,
                  std::string name = "vrf");

    unsigned entries() const { return entries_; }
    unsigned nativeDim() const { return nativeDim_; }

    /** Read @p count consecutive entries starting at @p addr. */
    FVec read(uint32_t addr, uint32_t count = 1) const;

    /**
     * Write @p data (count * nativeDim elements) into consecutive
     * entries starting at @p addr, rounding each element to float16.
     */
    void write(uint32_t addr, std::span<const float> data);

    /** Zero all entries. */
    void clear();

  private:
    void checkRange(uint32_t addr, uint32_t count) const;

    unsigned entries_;
    unsigned nativeDim_;
    std::string name_;
    std::vector<float> data_;
};

/**
 * A BFP-quantized native matrix tile: nativeDim rows, each an
 * independently quantized BFP block of nativeDim elements (the paper's
 * per-native-vector shared exponent granularity).
 */
class QuantTile
{
  public:
    QuantTile() = default;

    /** Quantize a native_dim x native_dim float tile. */
    QuantTile(const FMat &tile, const BfpFormat &fmt);

    bool valid() const { return !rows_.empty(); }
    size_t dim() const { return rows_.size(); }
    const BfpBlock &row(size_t r) const { return rows_[r]; }

    /** Dequantize back to a float matrix (for inspection/tests). */
    FMat dequant() const;

  private:
    std::vector<BfpBlock> rows_;
};

/**
 * The matrix register file: a fixed number of native-tile entries,
 * written only from DRAM or the network, read only by mv_mul.
 */
class MatrixRegFile
{
  public:
    MatrixRegFile(unsigned tiles, unsigned native_dim);

    unsigned tiles() const { return tiles_; }

    /** Store a quantized tile at entry @p addr. */
    void write(uint32_t addr, QuantTile tile);

    /** Fetch entry @p addr; throws if the entry was never written. */
    const QuantTile &read(uint32_t addr) const;

    bool isWritten(uint32_t addr) const;

  private:
    unsigned tiles_;
    unsigned nativeDim_;
    std::vector<QuantTile> data_;
};

/**
 * Simplified accelerator-local DRAM: separately indexed native-vector
 * and native-tile regions (entry-granularity addressing; the timing
 * model accounts for byte bandwidth independently).
 */
class DramStore
{
  public:
    DramStore(uint64_t capacity_bytes, unsigned native_dim);

    FVec readVector(uint32_t addr, uint32_t count) const;
    void writeVector(uint32_t addr, std::span<const float> data);

    const FMat &readTile(uint32_t addr) const;
    void writeTile(uint32_t addr, FMat tile);

    uint64_t capacityBytes() const { return capacityBytes_; }

  private:
    uint64_t capacityBytes_;
    unsigned nativeDim_;
    std::vector<FVec> vectors_;
    std::vector<FMat> tiles_;
};

/**
 * Network input/output queues. Entries are native vectors (v_rd/v_wr
 * NetQ) or float native tiles (m_rd NetQ, quantized on the m_wr into
 * the MRF).
 */
class NetQueues
{
  public:
    explicit NetQueues(unsigned native_dim) : nativeDim_(native_dim) {}

    /** Host: enqueue one native vector for the NPU to read. */
    void pushInputVector(FVec v);
    /** Host: enqueue a native tile (weight initialization). */
    void pushInputTile(FMat tile);

    /** NPU: pop @p count native vectors (concatenated). */
    FVec popInput(uint32_t count);
    /** NPU: pop one native tile. */
    FMat popInputTile();

    /** NPU: push an output native vector. */
    void pushOutput(FVec v);
    /** Host: pop @p count output native vectors (concatenated). */
    FVec popOutput(uint32_t count);

    size_t inputDepth() const { return in_.size(); }
    size_t outputDepth() const { return out_.size(); }
    size_t inputTileDepth() const { return inTiles_.size(); }

  private:
    unsigned nativeDim_;
    std::deque<FVec> in_;
    std::deque<FVec> out_;
    std::deque<FMat> inTiles_;
};

} // namespace bw

#endif // BW_FUNC_REGFILE_H
