/**
 * @file
 * Software IEEE 754 binary16 ("float16"/"half") emulation.
 *
 * The paper (Section VI) states that secondary (point-wise vector)
 * operations in the BW NPU execute as float16 on hardware; only matrix
 * dot products see block-floating-point quantization. This type gives the
 * functional simulator bit-exact float16 storage semantics: values round
 * through binary16 (round-to-nearest-even, denormals, inf/nan) on every
 * store, with arithmetic performed in float32, matching typical FPGA
 * half-precision function-unit behaviour.
 */

#ifndef BW_BFP_FLOAT16_H
#define BW_BFP_FLOAT16_H

#include <cstdint>

namespace bw {

/** Bit-exact binary16 storage type. */
class Half
{
  public:
    Half() = default;

    /** Construct by rounding a float32 to binary16 (RNE). */
    explicit Half(float f) : bits_(fromFloat(f)) {}

    /** Reinterpret raw binary16 bits. */
    static Half
    fromBits(uint16_t b)
    {
        Half h;
        h.bits_ = b;
        return h;
    }

    /** Widen to float32 (exact). */
    float toFloat() const { return halfToFloat(bits_); }
    explicit operator float() const { return toFloat(); }

    uint16_t bits() const { return bits_; }

    bool isNan() const;
    bool isInf() const;

    bool operator==(const Half &o) const { return bits_ == o.bits_; }

    /** Round a float32 to the nearest binary16 bit pattern (RNE). */
    static uint16_t fromFloat(float f);

    /** Exact widening of a binary16 bit pattern to float32. */
    static float halfToFloat(uint16_t h);

  private:
    uint16_t bits_ = 0;
};

/** Round-trip a float32 value through binary16 precision. */
inline float
roundToHalf(float f)
{
    return Half(f).toFloat();
}

} // namespace bw

#endif // BW_BFP_FLOAT16_H
