#include "bfp/float16.h"

#include <cmath>
#include <cstring>

namespace bw {

namespace {

/** Reinterpret float bits as uint32. */
uint32_t
floatBits(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
bitsFloat(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace

bool
Half::isNan() const
{
    return (bits_ & 0x7C00) == 0x7C00 && (bits_ & 0x03FF) != 0;
}

bool
Half::isInf() const
{
    return (bits_ & 0x7FFF) == 0x7C00;
}

uint16_t
Half::fromFloat(float f)
{
    uint32_t u = floatBits(f);
    uint16_t sign = static_cast<uint16_t>((u >> 16) & 0x8000);
    int32_t exp = static_cast<int32_t>((u >> 23) & 0xFF) - 127;
    uint32_t mant = u & 0x007FFFFF;

    // NaN / Inf.
    if (exp == 128) {
        if (mant)
            return sign | 0x7C00 | 0x0200 | static_cast<uint16_t>(mant >> 13);
        return sign | 0x7C00;
    }

    // Overflow to infinity.
    if (exp > 15) {
        // Values that would round to > half-max become inf.
        return sign | 0x7C00;
    }

    // Normal range for half: exp in [-14, 15].
    if (exp >= -14) {
        // 23 -> 10 bit mantissa with round-to-nearest-even on the 13
        // discarded bits.
        uint32_t half_mant = mant >> 13;
        uint32_t rem = mant & 0x1FFF;
        uint16_t h = static_cast<uint16_t>(
            sign | ((exp + 15) << 10) | half_mant);
        if (rem > 0x1000 || (rem == 0x1000 && (half_mant & 1)))
            ++h; // carries correctly into the exponent (and to inf)
        return h;
    }

    // Denormal range: exp in [-24, -15]; shift in the implicit bit.
    if (exp >= -24) {
        mant |= 0x00800000;
        unsigned shift = static_cast<unsigned>(-exp - 14) + 13;
        uint32_t half_mant = mant >> shift;
        uint32_t rem_mask = (1u << shift) - 1;
        uint32_t rem = mant & rem_mask;
        uint32_t halfway = 1u << (shift - 1);
        uint16_t h = static_cast<uint16_t>(sign | half_mant);
        if (rem > halfway || (rem == halfway && (half_mant & 1)))
            ++h;
        return h;
    }

    // Underflow to signed zero.
    return sign;
}

float
Half::halfToFloat(uint16_t h)
{
    uint32_t sign = static_cast<uint32_t>(h & 0x8000) << 16;
    uint32_t exp = (h >> 10) & 0x1F;
    uint32_t mant = h & 0x03FF;

    if (exp == 0x1F) { // inf / nan
        return bitsFloat(sign | 0x7F800000 | (mant << 13));
    }
    if (exp == 0) {
        if (mant == 0)
            return bitsFloat(sign); // signed zero
        // Denormal: normalize.
        int e = -1;
        do {
            mant <<= 1;
            ++e;
        } while (!(mant & 0x0400));
        mant &= 0x03FF;
        uint32_t fexp = static_cast<uint32_t>(127 - 15 - e);
        return bitsFloat(sign | (fexp << 23) | (mant << 13));
    }
    return bitsFloat(sign | ((exp - 15 + 127) << 23) | (mant << 13));
}

} // namespace bw
