#include "bfp/bfp.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace bw {

BfpFormat
BfpFormat::parse(const std::string &s)
{
    BfpFormat f;
    int n = std::sscanf(s.c_str(), "%ds.%de.%dm", &f.signBits, &f.expBits,
                        &f.mantBits);
    if (n != 3 || f.signBits != 1 || f.expBits < 2 || f.expBits > 8 ||
        f.mantBits < 1 || f.mantBits > 23) {
        BW_FATAL("malformed BFP format string '%s' (expected e.g. '1s.5e.2m')",
                 s.c_str());
    }
    return f;
}

std::string
BfpFormat::toString() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%ds.%de.%dm", signBits, expBits,
                  mantBits);
    return buf;
}

BfpFormat
bfp152()
{
    return BfpFormat{1, 5, 2};
}

BfpFormat
bfp155()
{
    return BfpFormat{1, 5, 5};
}

BfpBlock::BfpBlock(std::span<const float> values, const BfpFormat &fmt)
    : fmt_(fmt)
{
    // Shared exponent: exponent of the largest magnitude in the block,
    // clamped to the representable 5-bit (by default) range.
    float max_abs = 0.0f;
    for (float v : values)
        max_abs = std::max(max_abs, std::fabs(v));

    if (max_abs == 0.0f) {
        exp_ = fmt_.minExp();
        mant_.assign(values.size(), 0);
        return;
    }

    int e = static_cast<int>(std::floor(std::log2(max_abs)));
    // If the block maximum would round past the largest mantissa, bump
    // the shared exponent so no element saturates (keeps quantization
    // error within half an LSB everywhere).
    if (std::nearbyint(max_abs * std::ldexp(1.0, fmt_.mantBits - 1 - e)) >
        fmt_.maxMant()) {
        ++e;
    }
    e = std::min(std::max(e, fmt_.minExp()), fmt_.maxExp());
    exp_ = e;

    // Mantissa scale: value = q * 2^(E - (m-1)), so q = v * 2^((m-1) - E).
    double inv_scale = std::ldexp(1.0, fmt_.mantBits - 1 - exp_);
    mant_.resize(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
        double q = std::nearbyint(values[i] * inv_scale);
        double lim = fmt_.maxMant();
        if (q > lim)
            q = lim;
        else if (q < -lim)
            q = -lim;
        mant_[i] = static_cast<int32_t>(q);
    }
}

double
BfpBlock::scale() const
{
    return std::ldexp(1.0, exp_ - (fmt_.mantBits - 1));
}

float
BfpBlock::dequant(size_t i) const
{
    BW_ASSERT(i < mant_.size());
    return static_cast<float>(mant_[i] * scale());
}

std::vector<float>
BfpBlock::dequantAll() const
{
    std::vector<float> out(mant_.size());
    for (size_t i = 0; i < mant_.size(); ++i)
        out[i] = dequant(i);
    return out;
}

double
BfpBlock::dot(const BfpBlock &a, const BfpBlock &b)
{
    if (a.size() != b.size())
        BW_FATAL("BFP dot of unequal blocks (%zu vs %zu)", a.size(),
                 b.size());
    // Hardware integer MAC tree: products and sums are exact in wide
    // integer; a single scale is applied to the final accumulator.
    int64_t acc = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        acc += static_cast<int64_t>(a.mant_[i]) *
               static_cast<int64_t>(b.mant_[i]);
    }
    return static_cast<double>(acc) * a.scale() * b.scale();
}

std::vector<float>
bfpRoundTrip(std::span<const float> v, const BfpFormat &fmt)
{
    return BfpBlock(v, fmt).dequantAll();
}

QuantError
measureQuantError(std::span<const float> ref, std::span<const float> q)
{
    BW_ASSERT(ref.size() == q.size());
    QuantError e;
    double sum_sq = 0.0, ref_sq = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
        double d = static_cast<double>(ref[i]) - q[i];
        e.maxAbs = std::max(e.maxAbs, std::fabs(d));
        sum_sq += d * d;
        ref_sq += static_cast<double>(ref[i]) * ref[i];
    }
    if (!ref.empty()) {
        e.rmse = std::sqrt(sum_sq / ref.size());
        double ref_rms = std::sqrt(ref_sq / ref.size());
        e.relRmse = ref_rms > 0.0 ? e.rmse / ref_rms : 0.0;
    }
    return e;
}

} // namespace bw
