/**
 * @file
 * Block floating point (BFP) numerics, per Section VI of the paper.
 *
 * The BW NPU shares a single 5-bit exponent across a group of numbers at
 * native-vector granularity (e.g., one exponent per 128 signs+mantissas),
 * with mantissas trimmed to as low as 2-5 bits. Quantization noise affects
 * only dot products; point-wise operations run in float16.
 *
 * Representation used here: a block of N values shares an exponent E
 * (the exponent of the largest magnitude in the block). Each element is a
 * signed integer mantissa q with |q| <= 2^m - 1 for m mantissa bits, and
 * the represented value is q * 2^(E - (m - 1)). This is the natural
 * fixed-point-per-block reading of the paper's "1s.5e.2m" notation.
 */

#ifndef BW_BFP_BFP_H
#define BW_BFP_BFP_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bw {

/**
 * A BFP format descriptor, e.g. "1s.5e.2m": 1 sign bit, a 5-bit shared
 * exponent per block, and 2 mantissa bits per element.
 */
struct BfpFormat
{
    int signBits = 1;
    int expBits = 5;
    int mantBits = 2;

    /** Bits of per-element storage (sign + mantissa). */
    int elemBits() const { return signBits + mantBits; }

    /** Largest representable mantissa magnitude. */
    int32_t maxMant() const { return (1 << mantBits) - 1; }

    /** Exponent bias; stored exponent is E + bias in [0, 2^expBits). */
    int bias() const { return (1 << (expBits - 1)) - 1; }

    int minExp() const { return -bias(); }
    int maxExp() const { return (1 << expBits) - 1 - bias(); }

    /** Parse "1s.5e.2m" notation. Throws bw::Error on malformed input. */
    static BfpFormat parse(const std::string &s);

    /** Render as "1s.5e.2m". */
    std::string toString() const;

    bool operator==(const BfpFormat &o) const = default;
};

/** Widely used format presets. */
BfpFormat bfp152(); //!< 1s.5e.2m, the BW_S10 RNN format (Table IV)
BfpFormat bfp155(); //!< 1s.5e.5m, the BW_CNN_A10 format (Table VI)

/**
 * One quantized block: a shared exponent plus integer mantissas.
 * Blocks are produced from spans of float and dequantize back to float.
 */
class BfpBlock
{
  public:
    BfpBlock() = default;

    /** Quantize @p values into a block with the given format (RNE). */
    BfpBlock(std::span<const float> values, const BfpFormat &fmt);

    /** Dequantize element @p i to float. */
    float dequant(size_t i) const;

    /** Dequantize the whole block. */
    std::vector<float> dequantAll() const;

    size_t size() const { return mant_.size(); }
    int exponent() const { return exp_; }
    int32_t mantissa(size_t i) const { return mant_[i]; }
    const BfpFormat &format() const { return fmt_; }

    /** Scale factor 2^(E - (m-1)) applied to mantissas. */
    double scale() const;

    /**
     * Exact fixed-point dot product of two blocks, as the hardware's MAC
     * array computes it: integer multiply-accumulate, one final scale.
     * Blocks must have equal length.
     */
    static double dot(const BfpBlock &a, const BfpBlock &b);

  private:
    BfpFormat fmt_;
    int exp_ = 0;             //!< shared exponent E (unbiased)
    std::vector<int32_t> mant_; //!< signed mantissas, |q| <= maxMant()
};

/** Round-trip a float vector through BFP quantization. */
std::vector<float> bfpRoundTrip(std::span<const float> v,
                                const BfpFormat &fmt);

/**
 * Quantization error metrics between a reference vector and its
 * quantized reconstruction.
 */
struct QuantError
{
    double maxAbs = 0.0;  //!< max |ref - q|
    double rmse = 0.0;    //!< root-mean-square error
    double relRmse = 0.0; //!< rmse / rms(ref); 0 when ref is all-zero
};

QuantError measureQuantError(std::span<const float> ref,
                             std::span<const float> quantized);

} // namespace bw

#endif // BW_BFP_BFP_H
