/**
 * @file
 * Host-side dense tensor types used at the library boundary: model weights
 * and activations enter and leave the NPU stack as plain row-major float
 * matrices/vectors. These are deliberately simple value types; device-side
 * (quantized, tiled) storage lives in the functional simulator.
 */

#ifndef BW_TENSOR_TENSOR_H
#define BW_TENSOR_TENSOR_H

#include <cstddef>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace bw {

/** 1-D float vector. */
using FVec = std::vector<float>;

/** Row-major 2-D float matrix. */
class FMat
{
  public:
    FMat() = default;

    /** rows x cols matrix, zero-initialized. */
    FMat(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    /** rows x cols matrix from flat row-major data. */
    FMat(size_t rows, size_t cols, std::vector<float> data)
        : rows_(rows), cols_(cols), data_(std::move(data))
    {
        BW_ASSERT(data_.size() == rows_ * cols_);
    }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    float &operator()(size_t r, size_t c) { return at(r, c); }
    float operator()(size_t r, size_t c) const { return at(r, c); }

    /** Row @p r as a span of cols() floats. */
    std::span<const float>
    row(size_t r) const
    {
        BW_ASSERT(r < rows_);
        return {data_.data() + r * cols_, cols_};
    }

    std::span<float>
    row(size_t r)
    {
        BW_ASSERT(r < rows_);
        return {data_.data() + r * cols_, cols_};
    }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

/** 4-D NHWC float tensor for CNN activations. */
class FTensor4
{
  public:
    FTensor4() = default;

    FTensor4(size_t n, size_t h, size_t w, size_t c)
        : n_(n), h_(h), w_(w), c_(c), data_(n * h * w * c, 0.0f)
    {}

    size_t n() const { return n_; }
    size_t h() const { return h_; }
    size_t w() const { return w_; }
    size_t c() const { return c_; }
    size_t size() const { return data_.size(); }

    float &
    at(size_t n, size_t y, size_t x, size_t ch)
    {
        return data_[((n * h_ + y) * w_ + x) * c_ + ch];
    }

    float
    at(size_t n, size_t y, size_t x, size_t ch) const
    {
        return data_[((n * h_ + y) * w_ + x) * c_ + ch];
    }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

  private:
    size_t n_ = 0, h_ = 0, w_ = 0, c_ = 0;
    std::vector<float> data_;
};

/** Reference y = A*x (row-major GEMV) in double accumulation. */
FVec gemvRef(const FMat &a, std::span<const float> x);

/** y = a + b elementwise. */
FVec addRef(std::span<const float> a, std::span<const float> b);

/** y = a (Hadamard) b elementwise. */
FVec mulRef(std::span<const float> a, std::span<const float> b);

/** Pad @p v with zeros to @p len (must be >= v.size()). */
FVec padTo(std::span<const float> v, size_t len);

/** Zero-pad a matrix to @p rows x @p cols. */
FMat padTo(const FMat &m, size_t rows, size_t cols);

/** Fill with uniform random values in [lo, hi). */
void fillUniform(FVec &v, Rng &rng, float lo = -1.0f, float hi = 1.0f);
void fillUniform(FMat &m, Rng &rng, float lo = -1.0f, float hi = 1.0f);

/**
 * Xavier/Glorot-style initialization used for synthetic RNN weights,
 * giving realistic dynamic range for quantization experiments.
 */
void fillXavier(FMat &m, Rng &rng);

/** Max |a-b| over two equal-length spans. */
double maxAbsDiff(std::span<const float> a, std::span<const float> b);

} // namespace bw

#endif // BW_TENSOR_TENSOR_H
