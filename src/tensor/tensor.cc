#include "tensor/tensor.h"

#include <cmath>

namespace bw {

FVec
gemvRef(const FMat &a, std::span<const float> x)
{
    BW_ASSERT(a.cols() == x.size(), "gemv: %zu cols vs %zu elems", a.cols(),
              x.size());
    FVec y(a.rows());
    for (size_t r = 0; r < a.rows(); ++r) {
        double acc = 0.0;
        auto row = a.row(r);
        for (size_t c = 0; c < a.cols(); ++c)
            acc += static_cast<double>(row[c]) * x[c];
        y[r] = static_cast<float>(acc);
    }
    return y;
}

FVec
addRef(std::span<const float> a, std::span<const float> b)
{
    BW_ASSERT(a.size() == b.size());
    FVec y(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        y[i] = a[i] + b[i];
    return y;
}

FVec
mulRef(std::span<const float> a, std::span<const float> b)
{
    BW_ASSERT(a.size() == b.size());
    FVec y(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        y[i] = a[i] * b[i];
    return y;
}

FVec
padTo(std::span<const float> v, size_t len)
{
    BW_ASSERT(len >= v.size());
    FVec out(len, 0.0f);
    std::copy(v.begin(), v.end(), out.begin());
    return out;
}

FMat
padTo(const FMat &m, size_t rows, size_t cols)
{
    BW_ASSERT(rows >= m.rows() && cols >= m.cols());
    FMat out(rows, cols);
    for (size_t r = 0; r < m.rows(); ++r) {
        auto src = m.row(r);
        std::copy(src.begin(), src.end(), out.row(r).begin());
    }
    return out;
}

void
fillUniform(FVec &v, Rng &rng, float lo, float hi)
{
    for (auto &x : v)
        x = rng.uniformF(lo, hi);
}

void
fillUniform(FMat &m, Rng &rng, float lo, float hi)
{
    for (auto &x : m.data())
        x = rng.uniformF(lo, hi);
}

void
fillXavier(FMat &m, Rng &rng)
{
    if (m.size() == 0)
        return;
    float limit = std::sqrt(6.0f / (m.rows() + m.cols()));
    for (auto &x : m.data())
        x = rng.uniformF(-limit, limit);
}

double
maxAbsDiff(std::span<const float> a, std::span<const float> b)
{
    BW_ASSERT(a.size() == b.size());
    double m = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
    return m;
}

} // namespace bw
