#include "timing/npu_timing.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/bits.h"
#include "common/logging.h"
#include "isa/analysis.h"
#include "isa/validate.h"

namespace bw {
namespace timing {

namespace {

/** Class index within an MFU: 0 = add/sub, 1 = multiply, 2 = activation. */
int
mfuClassIndex(Opcode op)
{
    switch (opcodeInfo(op).unit) {
      case UnitClass::MfuAddSub: return 0;
      case UnitClass::MfuMul: return 1;
      case UnitClass::MfuAct: return 2;
      default: BW_PANIC("%s is not an MFU op", opcodeName(op));
    }
}

} // namespace

/** Observability state for the chain currently in flight. */
struct NpuTiming::ChainCtx
{
    obs::ChainProfile prof;
};

NpuTiming::NpuTiming(const NpuConfig &cfg)
    : cfg_(cfg), beats_(cfg.nativeVectorBeats()), tp_(cfg.timing),
      engines_(cfg.tileEngines), reduceUnits_(cfg.tileEngines),
      mfuUnits_(cfg.mfus * 3), mvmSched_(cfg.tileEngines),
      ivrfWrite_(cfg.tileEngines), asvrfWrite_(cfg.tileEngines),
      mulvrfWrite_(cfg.tileEngines)
{
    cfg_.validate();
    // Per-chain timing trace to stderr (debugging aid);
    // BW_TIMING_TRACE=events additionally prints every busy interval.
    if (const char *env = std::getenv("BW_TIMING_TRACE")) {
        envSink_ = std::make_unique<obs::TextTraceSink>(
            stderr, std::string(env) == "events");
        sink_ = envSink_.get();
    }
    dotLatency_ = tp_.mvmMulLatency +
                  ceilLog2(std::max(2u, cfg_.lanes)) *
                      tp_.accumTreeStageLatency +
                  1;
}

void
NpuTiming::setTraceSink(obs::TraceSink *sink)
{
    sink_ = sink ? sink : envSink_.get();
}

void
NpuTiming::setMetricsRegistry(metrics::Registry *registry)
{
    metrics_ = registry;
}

void
NpuTiming::publishMetrics(const TimingResult &res)
{
    metrics::Registry &reg = *metrics_;
    double total = static_cast<double>(res.totalCycles);
    auto util = [&](const char *resource, Cycles busy, size_t units) {
        double u = total > 0 && units > 0
                       ? static_cast<double>(busy) /
                             (total * static_cast<double>(units))
                       : 0.0;
        reg.gauge("bw_npu_utilization",
                  "Occupancy fraction of one NPU resource class over "
                  "the most recent timing run",
                  {{"resource", resource}})
            .set(u);
    };
    util("control_processor", nios_.busyCycles(), 1);
    util("mvm_tile_engines", engines_.totalBusyCycles(),
         engines_.size());
    util("reduce_units", reduceUnits_.totalBusyCycles(),
         reduceUnits_.size());
    util("mfu_units", mfuUnits_.totalBusyCycles(), mfuUnits_.size());
    util("vrf_read_ports",
         ivrfRead_.busyCycles() + asvrfRead_.busyCycles() +
             mulvrfRead_.busyCycles(),
         3);
    util("vrf_write_ports",
         ivrfWrite_.totalBusyCycles() + asvrfWrite_.totalBusyCycles() +
             mulvrfWrite_.totalBusyCycles(),
         ivrfWrite_.size() + asvrfWrite_.size() + mulvrfWrite_.size());
    util("net_in", netIn_.busyCycles(), 1);
    util("net_out", netOut_.busyCycles(), 1);
    util("dram", dram_.busyCycles(), 1);

    const char *help = "Cumulative timing-simulator totals";
    reg.counter("bw_npu_runs_total", help).inc();
    reg.counter("bw_npu_cycles_total", help).add(res.totalCycles);
    reg.counter("bw_npu_chains_total", help).add(res.chainsExecuted);
    reg.counter("bw_npu_instructions_total", help)
        .add(res.instructionsDispatched);
    reg.counter("bw_npu_native_tile_ops_total", help)
        .add(res.nativeTileOps);
}

void
NpuTiming::emit(obs::EventKind kind, obs::ResClass res, uint16_t res_index,
                Cycles start, Cycles end, MemId mem, uint32_t addr)
{
    if (!sink_)
        return;
    obs::TraceEvent e;
    e.start = start;
    e.end = end;
    e.kind = kind;
    e.res = res;
    e.resIndex = res_index;
    e.chain = ctx_ ? ctx_->prof.chain : 0;
    e.mem = mem;
    e.addr = addr;
    sink_->event(e);
}

void
NpuTiming::noteDataStall(Cycles earliest, Cycles dep, MemId mem,
                         uint32_t addr)
{
    if (!ctx_ || dep <= earliest)
        return;
    Cycles w = dep - earliest;
    ctx_->prof.dataStall += w;
    if (w > ctx_->prof.worstDataStall) {
        ctx_->prof.worstDataStall = w;
        ctx_->prof.dataStallMem = mem;
        ctx_->prof.dataStallAddr = addr;
    }
}

void
NpuTiming::noteInputStall(Cycles earliest, Cycles arrival)
{
    if (!ctx_ || arrival <= earliest)
        return;
    ctx_->prof.inputStall += arrival - earliest;
}

void
NpuTiming::noteStructStall(Cycles requested, Cycles granted,
                           obs::ResClass res)
{
    if (!ctx_ || granted <= requested)
        return;
    Cycles w = granted - requested;
    ctx_->prof.structStall += w;
    if (w > ctx_->prof.worstStructStall) {
        ctx_->prof.worstStructStall = w;
        ctx_->prof.structRes = res;
    }
}

void
NpuTiming::setInputArrivals(std::vector<Cycles> arrivals)
{
    inputArrivals_.assign(arrivals.begin(), arrivals.end());
}

void
NpuTiming::setTileBeats(std::unordered_map<uint32_t, unsigned> beats)
{
    tileBeats_ = std::move(beats);
}

void
NpuTiming::setIterationSnapshots(std::vector<IterationSnapshot> *out)
{
    snaps_ = out;
}

void
NpuTiming::captureSnapshot(const TimingResult &res, Cycles end)
{
    if (!snaps_)
        return;
    IterationSnapshot s;
    s.end = end;
    s.niosBusy = nios_.busyCycles();
    s.mvmBusy = engines_.totalBusyCycles();
    s.reduceBusy = reduceUnits_.totalBusyCycles();
    s.mfuBusy = mfuUnits_.totalBusyCycles();
    s.vrfReadBusy = ivrfRead_.busyCycles() + asvrfRead_.busyCycles() +
                    mulvrfRead_.busyCycles();
    s.vrfWriteBusy = ivrfWrite_.totalBusyCycles() +
                     asvrfWrite_.totalBusyCycles() +
                     mulvrfWrite_.totalBusyCycles();
    s.netInBusy = netIn_.busyCycles();
    s.netOutBusy = netOut_.busyCycles();
    s.dramBusy = dram_.busyCycles();
    s.dispatchedOps = res.dispatchedOps;
    s.mvmOps = res.mvmOps;
    s.instructions = res.instructionsDispatched;
    s.chains = res.chainsExecuted;
    s.nativeTileOps = res.nativeTileOps;
    s.matrixTilesMoved = res.stats.counter("matrix_tiles_moved");
    s.outputCount = res.outputTimes.size();
    snaps_->push_back(s);
}

Cycles
NpuTiming::nextInputArrival()
{
    if (inputArrivals_.empty())
        return 0;
    Cycles t = inputArrivals_.front();
    inputArrivals_.pop_front();
    return t;
}

Server &
NpuTiming::readPort(MemId m)
{
    switch (m) {
      case MemId::InitialVrf: return ivrfRead_;
      case MemId::AddSubVrf: return asvrfRead_;
      case MemId::MultiplyVrf: return mulvrfRead_;
      default: BW_PANIC("%s has no vector read port", memIdName(m));
    }
}

ServerArray &
NpuTiming::writePorts(MemId m)
{
    switch (m) {
      case MemId::InitialVrf: return ivrfWrite_;
      case MemId::AddSubVrf: return asvrfWrite_;
      case MemId::MultiplyVrf: return mulvrfWrite_;
      default: BW_PANIC("%s has no vector write port", memIdName(m));
    }
}

Cycles
NpuTiming::readBlock(const Instruction &inst, uint32_t offset,
                     Cycles earliest, bool for_mvm)
{
    switch (inst.mem) {
      case MemId::InitialVrf:
      case MemId::AddSubVrf:
      case MemId::MultiplyVrf: {
        Cycles dep = board_.readyAt(inst.mem, inst.addr + offset, 1);
        noteDataStall(earliest, dep, inst.mem, inst.addr + offset);
        if (for_mvm) {
            // MVM input streaming reads the replicated per-tile-engine
            // input VRFs (Fig. 5): every dot-product unit has a
            // dedicated memory port, so there is no shared-port
            // contention — only read latency. The bandwidth cost is
            // paid on the (single-ported) multicast write side.
            ivrfReadMvm_.acquire(std::max(earliest, dep), 0);
            return std::max(earliest, dep) + tp_.vrfReadLatency;
        }
        Cycles s = readPort(inst.mem).acquire(std::max(earliest, dep),
                                              tp_.vectorUnitBeats);
        noteStructStall(std::max(earliest, dep), s, obs::ResClass::VrfPort);
        emit(obs::EventKind::VrfRead, obs::ResClass::VrfPort, 0, s,
             s + tp_.vectorUnitBeats, inst.mem, inst.addr + offset);
        return s + tp_.vrfReadLatency;
      }
      case MemId::NetQ: {
        Cycles arr = nextInputArrival();
        noteInputStall(earliest, arr);
        Cycles s = netIn_.acquire(std::max(earliest, arr), tp_.netBeats);
        noteStructStall(std::max(earliest, arr), s,
                        obs::ResClass::Network);
        emit(obs::EventKind::NetIn, obs::ResClass::Network, 0, s,
             s + tp_.netBeats);
        return s + tp_.netqLatency;
      }
      case MemId::Dram: {
        Cycles dep = board_.readyAt(MemId::Dram, inst.addr + offset, 1);
        noteDataStall(earliest, dep, MemId::Dram, inst.addr + offset);
        Cycles occ = std::max<Cycles>(
            1, static_cast<uint64_t>(cfg_.nativeDim) * 2 /
                   tp_.dramBytesPerCycle);
        Cycles s = dram_.acquire(std::max(earliest, dep), occ);
        noteStructStall(std::max(earliest, dep), s, obs::ResClass::Dram);
        emit(obs::EventKind::DramRead, obs::ResClass::Dram, 0, s, s + occ,
             MemId::Dram, inst.addr + offset);
        return s + tp_.dramLatency;
      }
      default:
        BW_PANIC("v_rd from %s", memIdName(inst.mem));
    }
}

std::vector<size_t>
NpuTiming::assignMfuUnits(const std::vector<const Instruction *> &pointwise,
                          Cycles at)
{
    (void)at;
    if (pointwise.empty())
        return {};

    // First-fit segmentation fixes the relative MFU order; the whole
    // segment sequence can then be shifted by the slack between the
    // required and the available number of MFUs. Choose the shift that
    // balances load (earliest next-free first unit), mirroring the
    // scheduler's freedom to bypass leading MFUs entirely.
    std::vector<int> segment(pointwise.size());
    int seg = -1;
    bool used[3] = {false, false, false};
    for (size_t j = 0; j < pointwise.size(); ++j) {
        int cls = mfuClassIndex(pointwise[j]->op);
        if (seg < 0 || used[cls]) {
            ++seg;
            used[0] = used[1] = used[2] = false;
        }
        used[cls] = true;
        segment[j] = seg;
    }
    unsigned needed = static_cast<unsigned>(seg + 1);
    BW_ASSERT(needed <= cfg_.mfus,
              "chain needs %u MFUs, config has %u (validation gap)",
              needed, cfg_.mfus);
    unsigned slack = cfg_.mfus - needed;

    unsigned best_shift = 0;
    Cycles best_free = ~0ull;
    for (unsigned shift = 0; shift <= slack; ++shift) {
        size_t u = (segment[0] + shift) * 3 +
                   mfuClassIndex(pointwise[0]->op);
        Cycles f = mfuUnits_[u].nextFree();
        if (f < best_free) {
            best_free = f;
            best_shift = shift;
        }
    }

    std::vector<size_t> units(pointwise.size());
    for (size_t j = 0; j < pointwise.size(); ++j) {
        units[j] = static_cast<size_t>(segment[j] + best_shift) * 3 +
                   mfuClassIndex(pointwise[j]->op);
    }
    return units;
}

Cycles
NpuTiming::execMatrixChain(const Program &prog, const Chain &c,
                           Cycles decode_done, TimingResult &res)
{
    const Instruction &rd = prog[c.first];
    const Instruction &wr = prog[c.first + 1];
    uint32_t tiles = c.rows * c.cols;
    unsigned n = cfg_.nativeDim;
    uint64_t tile_bytes = std::max<uint64_t>(
        1, static_cast<uint64_t>(n) * n * cfg_.precision.elemBits() / 8);
    Cycles done = decode_done;

    for (uint32_t t = 0; t < tiles; ++t) {
        Cycles ready;
        if (rd.mem == MemId::NetQ) {
            Cycles arr = nextInputArrival();
            noteInputStall(decode_done, arr);
            Cycles occ = static_cast<Cycles>(n) * tp_.netBeats;
            Cycles s = netIn_.acquire(std::max(decode_done, arr), occ);
            noteStructStall(std::max(decode_done, arr), s,
                            obs::ResClass::Network);
            emit(obs::EventKind::NetIn, obs::ResClass::Network, 0, s,
                 s + occ);
            ready = s + occ - 1 + tp_.netqLatency;
        } else { // Dram
            Cycles dep = board_.readyAt(MemId::Dram, rd.addr + t, 1);
            noteDataStall(decode_done, dep, MemId::Dram, rd.addr + t);
            Cycles occ = std::max<Cycles>(
                1, tile_bytes / tp_.dramBytesPerCycle);
            Cycles s = dram_.acquire(std::max(decode_done, dep), occ);
            noteStructStall(std::max(decode_done, dep), s,
                            obs::ResClass::Dram);
            emit(obs::EventKind::DramRead, obs::ResClass::Dram, 0, s,
                 s + occ, MemId::Dram, rd.addr + t);
            ready = s + occ - 1 + tp_.dramLatency;
        }

        Cycles wr_done;
        if (wr.mem == MemId::MatrixRf) {
            wr_done = ready + tp_.vrfWriteLatency;
            board_.setReady(MemId::MatrixRf, wr.addr + t, 1, wr_done);
        } else { // Dram
            Cycles occ = std::max<Cycles>(
                1, tile_bytes / tp_.dramBytesPerCycle);
            Cycles s = dram_.acquire(ready, occ);
            noteStructStall(ready, s, obs::ResClass::Dram);
            emit(obs::EventKind::DramWrite, obs::ResClass::Dram, 0, s,
                 s + occ, MemId::Dram, wr.addr + t);
            wr_done = s + occ - 1;
            board_.setReady(MemId::Dram, wr.addr + t, 1, wr_done);
        }
        done = std::max(done, wr_done);
        res.stats.inc("matrix_tiles_moved");
    }
    return done;
}

Cycles
NpuTiming::execVectorChain(const Program &prog, const Chain &c,
                           Cycles decode_done, TimingResult &res)
{
    uint32_t in_width = c.hasMvMul ? c.cols : c.rows;
    uint32_t out_width = c.rows;
    const Instruction &rd = prog[c.first];

    std::vector<const Instruction *> pointwise;
    std::vector<const Instruction *> writes;
    for (size_t i = c.first; i < c.end(); ++i) {
        const Instruction &inst = prog[i];
        if (isMfuOp(inst.op))
            pointwise.push_back(&inst);
        else if (inst.op == Opcode::VWr)
            writes.push_back(&inst);
    }

    // The chain is configured once and repeats iters times, advancing
    // v_rd/v_wr addresses by their width each repetition (mega-SIMD
    // iteration; weights and secondary operands stay fixed).
    Cycles chain_done = decode_done;
    for (uint32_t it = 0; it < c.iters; ++it) {
    uint32_t rd_off = it * in_width;
    uint32_t wr_off = it * out_width;

    // --- Head of pipe: source reads, then the MVM when present. ---
    std::vector<Cycles> vec_ready(out_width, 0);
    if (c.hasMvMul) {
        const Instruction &mv = prog[c.first + 1];
        Cycles mrf_ready = board_.readyAt(MemId::MatrixRf, mv.addr,
                                          c.rows * c.cols);
        noteDataStall(decode_done, mrf_ready, MemId::MatrixRf, mv.addr);

        std::vector<Cycles> block_ready(in_width);
        for (uint32_t b = 0; b < in_width; ++b) {
            // Broadcast over the vector arbitration network to engines.
            block_ready[b] =
                readBlock(rd, rd_off + b, decode_done, true) +
                tp_.arbNetLatency;
        }

        std::vector<Cycles> row_partials(out_width, 0);
        for (uint32_t r = 0; r < c.rows; ++r) {
            for (uint32_t cc = 0; cc < c.cols; ++cc) {
                uint32_t t = r * c.cols + cc;
                // The toolchain lays matrix tiles out across the MRF
                // banks to balance engine load (a fixed stride would
                // pile thin tail tiles onto a subset of engines):
                // model the placement as least-loaded engine choice.
                unsigned e = 0;
                for (unsigned k = 1; k < engines_.size(); ++k) {
                    if (engines_[k].nextFree() < engines_[e].nextFree())
                        e = k;
                }
                // Thin tail tiles stream in fewer beats.
                unsigned tb = beats_;
                auto tb_it = tileBeats_.find(mv.addr + t);
                if (tb_it != tileBeats_.end())
                    tb = tb_it->second;
                // Each engine's tile decoder dispatches one tile
                // op per cycle.
                Cycles sched = mvmSched_[e].acquire(decode_done, 1) + 1;
                Cycles earliest =
                    std::max({block_ready[cc], sched, mrf_ready});
                Cycles s = engines_[e].acquire(earliest, tb);
                noteStructStall(earliest, s, obs::ResClass::TileEngine);
                emit(obs::EventKind::TileStream,
                     obs::ResClass::TileEngine, static_cast<uint16_t>(e),
                     s, s + tb, MemId::MatrixRf, mv.addr + t);
                Cycles partial = s + tb - 1 + dotLatency_;
                row_partials[r] = std::max(row_partials[r], partial);
                ++res.nativeTileOps;
            }
        }

        unsigned reduce_lat =
            c.cols > 1 ? ceilLog2(c.cols) * tp_.reduceStageLatency : 0;
        for (uint32_t r = 0; r < out_width; ++r) {
            size_t unit = (static_cast<size_t>(wr_off) + r) %
                          reduceUnits_.size();
            Cycles s = reduceUnits_[unit].acquire(row_partials[r],
                                                  tp_.vectorUnitBeats);
            noteStructStall(row_partials[r], s, obs::ResClass::ReduceUnit);
            emit(obs::EventKind::Reduce, obs::ResClass::ReduceUnit,
                 static_cast<uint16_t>(unit), s, s + tp_.vectorUnitBeats);
            vec_ready[r] = s + reduce_lat + 1;
        }
    } else {
        for (uint32_t r = 0; r < out_width; ++r)
            vec_ready[r] = readBlock(rd, rd_off + r, decode_done, false);
    }

    // --- MFU stage: each output vector streams through the assigned
    //     function units in chain order. ---
    if (!pointwise.empty()) {
        auto units = assignMfuUnits(pointwise, decode_done);
        for (uint32_t r = 0; r < out_width; ++r) {
            Cycles t = vec_ready[r];
            for (size_t j = 0; j < pointwise.size(); ++j) {
                const Instruction &op = *pointwise[j];
                Cycles operand_ready = 0;
                if (opcodeInfo(op.op).hasIndex) {
                    uint32_t off =
                        c.strideOperands ? wr_off + r : r;
                    operand_ready =
                        board_.readyAt(op.mem, op.addr + off, 1);
                    noteDataStall(t, operand_ready, op.mem,
                                  op.addr + off);
                }
                Server &u = mfuUnits_[units[j]];
                Cycles s = u.acquire(std::max(t, operand_ready),
                                     tp_.vectorUnitBeats);
                noteStructStall(std::max(t, operand_ready), s,
                                obs::ResClass::MfuUnit);
                emit(obs::EventKind::MfuOp, obs::ResClass::MfuUnit,
                     static_cast<uint16_t>(units[j]), s,
                     s + tp_.vectorUnitBeats);
                Cycles lat;
                switch (mfuClassIndex(op.op)) {
                  case 0: lat = tp_.mfuAddLatency; break;
                  case 1: lat = tp_.mfuMulLatency; break;
                  default: lat = tp_.mfuActLatency; break;
                }
                t = s + lat + tp_.crossbarLatency;
            }
            vec_ready[r] = t;
        }
    }

    // --- Writeback over the vector arbitration network (multicast). ---
    for (const Instruction *w : writes) {
        for (uint32_t r = 0; r < out_width; ++r) {
            Cycles head = vec_ready[r] + tp_.arbNetLatency;
            Cycles done;
            switch (w->mem) {
              case MemId::NetQ: {
                Cycles s = netOut_.acquire(head, tp_.netBeats);
                noteStructStall(head, s, obs::ResClass::Network);
                emit(obs::EventKind::NetOut, obs::ResClass::Network, 1, s,
                     s + tp_.netBeats);
                done = s + tp_.netBeats - 1;
                res.outputTimes.push_back(done);
                break;
              }
              case MemId::Dram: {
                Cycles occ = std::max<Cycles>(
                    1, static_cast<uint64_t>(cfg_.nativeDim) * 2 /
                           tp_.dramBytesPerCycle);
                Cycles s = dram_.acquire(head, occ);
                noteStructStall(head, s, obs::ResClass::Dram);
                emit(obs::EventKind::DramWrite, obs::ResClass::Dram, 0, s,
                     s + occ, MemId::Dram, w->addr + wr_off + r);
                done = s + occ - 1 + tp_.dramLatency;
                board_.setReady(MemId::Dram, w->addr + wr_off + r, 1,
                                done);
                break;
              }
              default: {
                ServerArray &ports = writePorts(w->mem);
                size_t port = (static_cast<size_t>(wr_off) + r) %
                              ports.size();
                Cycles s = ports[port].acquire(head,
                                               tp_.vectorUnitBeats);
                noteStructStall(head, s, obs::ResClass::VrfPort);
                emit(obs::EventKind::VrfWrite, obs::ResClass::VrfPort,
                     static_cast<uint16_t>(port), s,
                     s + tp_.vectorUnitBeats, w->mem,
                     w->addr + wr_off + r);
                done = s + tp_.vectorUnitBeats - 1 + tp_.vrfWriteLatency;
                board_.setReady(w->mem, w->addr + wr_off + r, 1, done);
                break;
              }
            }
            chain_done = std::max(chain_done, done);
        }
    }
    } // iterations
    return chain_done;
}

TimingResult
NpuTiming::run(const Program &prog, unsigned iterations)
{
    return run(Program(), prog, iterations);
}

namespace {

/** Forwards to an inner sink while collecting retired-chain profiles. */
class ChainCollector : public obs::TraceSink
{
  public:
    ChainCollector(obs::TraceSink *inner,
                   std::vector<obs::ChainProfile> *out)
        : inner_(inner), out_(out)
    {
    }

    void
    event(const obs::TraceEvent &e) override
    {
        if (inner_)
            inner_->event(e);
    }

    void
    chainRetired(const obs::ChainProfile &p) override
    {
        if (out_)
            out_->push_back(p);
        if (inner_)
            inner_->chainRetired(p);
    }

  private:
    obs::TraceSink *inner_;
    std::vector<obs::ChainProfile> *out_;
};

} // namespace

TimingResult
NpuTiming::runProfiled(const Program &prologue, const Program &step,
                       unsigned iterations,
                       std::vector<obs::ChainProfile> *chains)
{
    // Swap in a forwarding collector for the duration of the run; the
    // previously attached sink (or the BW_TIMING_TRACE stderr sink)
    // keeps receiving everything.
    obs::TraceSink *saved = sink_;
    ChainCollector collector(saved, chains);
    sink_ = &collector;
    TimingResult res;
    try {
        res = run(prologue, step, iterations);
    } catch (...) {
        sink_ = saved;
        throw;
    }
    sink_ = saved;
    return res;
}

TimingResult
NpuTiming::run(const Program &prologue, const Program &step,
               unsigned iterations)
{
    checkProgram(prologue, cfg_);
    checkProgram(step, cfg_);
    auto pro_chains = prologue.chains();
    auto chains = step.chains();

    // Fresh machine state per run.
    nios_.reset();
    topSched_.reset();
    mvmSched_.reset();
    engines_.reset();
    reduceUnits_.reset();
    mfuUnits_.reset();
    ivrfReadMvm_.reset();
    ivrfRead_.reset();
    ivrfWrite_.reset();
    asvrfRead_.reset();
    asvrfWrite_.reset();
    mulvrfRead_.reset();
    mulvrfWrite_.reset();
    netIn_.reset();
    netOut_.reset();
    dram_.reset();
    board_.reset();

    TimingResult res;
    res.iterationEnd.reserve(iterations);

    auto exec_program = [&](const Program &prog,
                            const std::vector<Chain> &prog_chains) {
        Cycles last = 0;
        for (const Chain &c : prog_chains) {
            // The control processor streams the chain's instructions at
            // one compound instruction per dispatchInterval cycles.
            Cycles dispatch_start = 0;
            Cycles dispatch_done = 0;
            for (size_t k = 0; k < c.count; ++k) {
                Cycles s = nios_.acquire(0, tp_.dispatchInterval);
                if (k == 0)
                    dispatch_start = s;
                dispatch_done = s + tp_.dispatchInterval;
            }
            res.instructionsDispatched += c.count;

            if (c.kind == Chain::Kind::Scalar)
                continue;

            Cycles decode_done =
                topSched_.acquire(dispatch_done, tp_.chainInterval) +
                tp_.topSchedLatency + tp_.decoderLatency;
            if (c.hasMvMul)
                decode_done += tp_.l2SchedLatency;

            ChainCtx ctx;
            if (sink_) {
                ctx.prof.chain = static_cast<uint32_t>(c.first);
                ctx.prof.kind =
                    c.kind == Chain::Kind::Matrix ? 'M' : 'V';
                ctx.prof.label = prog[c.first].toString();
                ctx.prof.dispatchStart = dispatch_start;
                ctx.prof.dispatchDone = dispatch_done;
                ctx.prof.decodeDone = decode_done;
                ctx_ = &ctx;
                emit(obs::EventKind::Dispatch,
                     obs::ResClass::ControlProcessor, 0, dispatch_start,
                     dispatch_done);
                emit(obs::EventKind::Decode, obs::ResClass::TopScheduler,
                     0, dispatch_done, decode_done);
            }

            OpCount iter_mult =
                c.kind == Chain::Kind::Vector ? c.iters : 1;
            for (size_t i = c.first; i < c.end(); ++i) {
                OpCount ops =
                    instructionOps(prog[i], c.rows, c.cols, cfg_) *
                    iter_mult;
                res.dispatchedOps += ops;
                if (prog[i].op == Opcode::MvMul)
                    res.mvmOps += ops;
            }

            Cycles done = c.kind == Chain::Kind::Matrix
                              ? execMatrixChain(prog, c, decode_done, res)
                              : execVectorChain(prog, c, decode_done, res);
            if (sink_) {
                ctx.prof.done = done;
                sink_->chainRetired(ctx.prof);
                ctx_ = nullptr;
            }
            last = std::max(last, done);
            ++res.chainsExecuted;
        }
        return last;
    };

    if (snaps_) {
        snaps_->clear();
        snaps_->reserve(iterations + 1);
    }
    Cycles pro_end = exec_program(prologue, pro_chains);
    captureSnapshot(res, pro_end);
    for (unsigned it = 0; it < iterations; ++it) {
        Cycles iter_end = exec_program(step, chains);
        res.iterationEnd.push_back(iter_end);
        res.totalCycles = std::max(res.totalCycles, iter_end);
        captureSnapshot(res, iter_end);
    }

    res.mvmBusyCycles = engines_.totalBusyCycles();
    res.mfuBusyCycles = mfuUnits_.totalBusyCycles();
    res.stats.set("nios_busy_cycles", nios_.busyCycles());
    res.stats.set("mvm_busy_cycles", res.mvmBusyCycles);
    res.stats.set("mfu_busy_cycles", res.mfuBusyCycles);
    res.stats.set("reduce_busy_cycles", reduceUnits_.totalBusyCycles());
    res.stats.set("net_in_busy_cycles", netIn_.busyCycles());
    res.stats.set("net_out_busy_cycles", netOut_.busyCycles());
    res.stats.set("dram_busy_cycles", dram_.busyCycles());
    res.stats.set("vrf_read_busy_cycles",
                  ivrfRead_.busyCycles() + asvrfRead_.busyCycles() +
                      mulvrfRead_.busyCycles());
    res.stats.set("vrf_write_busy_cycles",
                  ivrfWrite_.totalBusyCycles() +
                      asvrfWrite_.totalBusyCycles() +
                      mulvrfWrite_.totalBusyCycles());
    res.stats.set("instructions", res.instructionsDispatched);
    res.stats.set("chains", res.chainsExecuted);
    res.stats.set("native_tile_ops", res.nativeTileOps);
    if (metrics_)
        publishMetrics(res);
    return res;
}

} // namespace timing
} // namespace bw
