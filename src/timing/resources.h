/**
 * @file
 * Occupancy-tracking primitives for the timing model. Each physical
 * resource (a matrix-vector tile engine, an MFU function unit, a VRF
 * port, the add-reduction unit, a network queue port) is a Server whose
 * timeline records when it is next free; acquiring a server models the
 * structural hazard of a busy unit.
 */

#ifndef BW_TIMING_RESOURCES_H
#define BW_TIMING_RESOURCES_H

#include <vector>

#include "common/units.h"

namespace bw {
namespace timing {

/** A single fully pipelined-at-occupancy-granularity resource. */
class Server
{
  public:
    /**
     * Reserve the server for @p occupancy cycles, no earlier than
     * @p earliest. Returns the cycle at which service starts.
     */
    Cycles
    acquire(Cycles earliest, Cycles occupancy)
    {
        Cycles start = std::max(earliest, nextFree_);
        nextFree_ = start + occupancy;
        busy_ += occupancy;
        return start;
    }

    Cycles nextFree() const { return nextFree_; }

    /** Total cycles of occupancy accumulated. */
    Cycles busyCycles() const { return busy_; }

    void
    reset()
    {
        nextFree_ = 0;
        busy_ = 0;
    }

  private:
    Cycles nextFree_ = 0;
    Cycles busy_ = 0;
};

/** A bank of identical servers with static index-based assignment. */
class ServerArray
{
  public:
    explicit ServerArray(size_t n = 0) : servers_(n) {}

    Server &operator[](size_t i) { return servers_[i]; }
    size_t size() const { return servers_.size(); }

    Cycles
    totalBusyCycles() const
    {
        Cycles sum = 0;
        for (const auto &s : servers_)
            sum += s.busyCycles();
        return sum;
    }

    void
    reset()
    {
        for (auto &s : servers_)
            s.reset();
    }

  private:
    std::vector<Server> servers_;
};

} // namespace timing
} // namespace bw

#endif // BW_TIMING_RESOURCES_H
