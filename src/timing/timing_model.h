/**
 * @file
 * Tiered timing fidelity: one TimingModel interface, three tiers.
 *
 * BW timing is input-value-independent — simulated latency is a pure
 * function of (NpuConfig, compiled program, tile-beat schedule, input
 * arrivals, iteration count) — which makes both extrapolation and
 * memoization sound. The ladder:
 *
 *   - CycleAccurateModel: today's NpuTiming, unchanged. The ground
 *     truth every other tier is measured against.
 *   - EventDrivenModel ("fast"): runs the exact simulator for a short
 *     warmup, detects the steady-state iteration period from the
 *     per-iteration snapshots (completion-cycle deltas AND every
 *     busy-cycle/counter delta must repeat), then jumps straight to
 *     the end: the remaining iterations are replicas of the detected
 *     period shifted by its cycle length. Aperiodic runs (or runs with
 *     a pending input-arrival schedule) fall back to the exact
 *     simulator — the fast tier never guesses.
 *   - MemoTimingModel ("cached"): a decorator caching TimingResult +
 *     retired ChainProfile vectors keyed on (config, prologue/step
 *     program fingerprints, tile-beat schedule, input-arrival
 *     schedule, iterations). The first request pays the inner tier's
 *     cost; identical subsequent requests replay the cached profile in
 *     O(1), bit-identically.
 *
 * Select a tier with Fidelity (or the BW_TIMING_MODE env var:
 * "cycle" | "fast" | "cached") and build it with makeTimingModel().
 * Session::time/timeProfiled, serve::Engine, and bw::cluster all
 * thread the selection through.
 */

#ifndef BW_TIMING_TIMING_MODEL_H
#define BW_TIMING_TIMING_MODEL_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/npu_config.h"
#include "isa/program.h"
#include "obs/trace.h"
#include "timing/npu_timing.h"
#include "timing/result.h"

#include <mutex>

namespace bw {
namespace timing {

/** Timing-simulation fidelity tier. */
enum class Fidelity : uint8_t
{
    CycleAccurate = 0, //!< exact NpuTiming pipeline model
    Fast,              //!< event-driven steady-state extrapolation
    Cached,            //!< memoized cycle-accurate (bit-identical hits)
};

const char *fidelityName(Fidelity f);

/** Parse "cycle" | "cycle_accurate" | "fast" | "event" | "cached" |
 *  "memo" (case-sensitive). Returns false on anything else. */
bool parseFidelity(const std::string &s, Fidelity *out);

/** BW_TIMING_MODE env selection; @p fallback when unset or invalid
 *  (invalid values warn). */
Fidelity fidelityFromEnv(Fidelity fallback = Fidelity::CycleAccurate);

/** A timing run plus its retired-chain profiles under shared
 *  ownership, so per-request consumers (the serving engine's span /
 *  flight exports) can hold the profile without copying it. */
struct ProfiledRun
{
    TimingResult result;
    std::shared_ptr<const std::vector<obs::ChainProfile>> chains;
};

/**
 * One timing-simulation tier. The contract every implementation obeys:
 *
 *   - setTileBeats() state persists across runs (it is part of the
 *     compiled model, like the program).
 *   - setInputArrivals() applies to the *next* run only, then clears —
 *     an arrival schedule describes one request stream, and a stale
 *     schedule silently reused for a different run is exactly the bug
 *     the memo tier's arrival fingerprint exists to prevent.
 *   - run()/runProfiled() are deterministic for fixed inputs.
 */
class TimingModel
{
  public:
    virtual ~TimingModel() = default;

    virtual const NpuConfig &config() const = 0;
    virtual Fidelity fidelity() const = 0;

    /** Thin-tail-tile schedule (CompiledModel::tileBeats); persists
     *  across runs. */
    virtual void
    setTileBeats(std::unordered_map<uint32_t, unsigned> beats) = 0;

    /** NetQ arrival schedule for the next run() only. */
    virtual void setInputArrivals(std::vector<Cycles> arrivals) = 0;

    /** Simulate @p iterations executions of @p step after a one-shot
     *  @p prologue (may be empty). */
    virtual TimingResult run(const Program &prologue, const Program &step,
                             unsigned iterations) = 0;

    /** As run(), appending retired-chain profiles to @p chains. */
    virtual TimingResult
    runProfiled(const Program &prologue, const Program &step,
                unsigned iterations,
                std::vector<obs::ChainProfile> *chains) = 0;

    /** Convenience: no prologue. */
    TimingResult
    run(const Program &step, unsigned iterations = 1)
    {
        return run(Program(), step, iterations);
    }

    /**
     * runProfiled() with the chain vector under shared ownership. The
     * memo tier overrides this to hand out its cached vector without a
     * copy; the default wraps a fresh profiled run.
     */
    virtual ProfiledRun runShared(const Program &prologue,
                                  const Program &step,
                                  unsigned iterations);
};

/** Tier 0: the exact pipeline model (wraps one NpuTiming). */
class CycleAccurateModel : public TimingModel
{
  public:
    explicit CycleAccurateModel(const NpuConfig &cfg) : sim_(cfg) {}

    const NpuConfig &config() const override { return sim_.config(); }
    Fidelity fidelity() const override { return Fidelity::CycleAccurate; }

    void
    setTileBeats(std::unordered_map<uint32_t, unsigned> beats) override
    {
        sim_.setTileBeats(std::move(beats));
    }

    void setInputArrivals(std::vector<Cycles> arrivals) override;

    TimingResult run(const Program &prologue, const Program &step,
                     unsigned iterations) override;
    TimingResult
    runProfiled(const Program &prologue, const Program &step,
                unsigned iterations,
                std::vector<obs::ChainProfile> *chains) override;

    /** The wrapped simulator — attach trace sinks / metrics here.
     *  Arrivals set directly on it bypass the next-run-only contract
     *  (they are consumed FIFO exactly as before this class existed). */
    NpuTiming &sim() { return sim_; }

  private:
    /** Apply pending arrivals, run @p body, restore the no-arrivals
     *  state. Arrivals set directly on sim_ are left alone. */
    template <typename Fn> TimingResult withArrivals(Fn &&body);

    NpuTiming sim_;
    std::vector<Cycles> pendingArrivals_;
    bool arrivalsSet_ = false;
};

/** Tier 1: event-driven steady-state extrapolation. */
class EventDrivenModel : public TimingModel
{
  public:
    struct Options
    {
        /** Exact-simulator iterations before extrapolating. Must cover
         *  pipeline fill plus stablePeriods * maxPeriod steady
         *  iterations; raise it for workloads with longer warmup.
         *  BW_TIMING_FAST_WARMUP overrides via makeTimingModel(). */
        unsigned warmupIterations = 16;
        /** Longest iteration period considered (cycle ends may repeat
         *  with period > 1 when resources interleave across steps). */
        unsigned maxPeriod = 4;
        /** Consecutive periods that must match exactly (ends, busy
         *  cycles, and all counters) before extrapolating. */
        unsigned stablePeriods = 3;
    };

    explicit EventDrivenModel(const NpuConfig &cfg)
        : EventDrivenModel(cfg, Options())
    {
    }
    EventDrivenModel(const NpuConfig &cfg, Options opt);

    const NpuConfig &config() const override { return sim_.config(); }
    Fidelity fidelity() const override { return Fidelity::Fast; }

    void
    setTileBeats(std::unordered_map<uint32_t, unsigned> beats) override
    {
        sim_.setTileBeats(std::move(beats));
    }

    void setInputArrivals(std::vector<Cycles> arrivals) override;

    TimingResult run(const Program &prologue, const Program &step,
                     unsigned iterations) override;
    TimingResult
    runProfiled(const Program &prologue, const Program &step,
                unsigned iterations,
                std::vector<obs::ChainProfile> *chains) override;

    const Options &options() const { return opt_; }
    /** Runs served by extrapolation vs. exact fallback (diagnostics). */
    uint64_t extrapolatedRuns() const { return extrapolated_; }
    uint64_t exactFallbacks() const { return fallbacks_; }

  private:
    TimingResult runImpl(const Program &prologue, const Program &step,
                         unsigned iterations,
                         std::vector<obs::ChainProfile> *chains);

    /** Smallest period whose snapshot deltas repeat stablePeriods
     *  times at the warmup tail; 0 when none qualifies. */
    unsigned detectPeriod(
        const std::vector<NpuTiming::IterationSnapshot> &snaps) const;

    NpuTiming sim_;
    Options opt_;
    std::vector<Cycles> pendingArrivals_;
    bool arrivalsSet_ = false;
    uint64_t extrapolated_ = 0;
    uint64_t fallbacks_ = 0;
};

/**
 * Tier 2: memoizing decorator. Thread-safe; cache hits return results
 * bit-identical to the first miss (the miss path always runs the inner
 * tier profiled, which is cycle-identical to an unprofiled run).
 */
class MemoTimingModel : public TimingModel
{
  public:
    explicit MemoTimingModel(std::unique_ptr<TimingModel> inner);

    const NpuConfig &config() const override { return inner_->config(); }
    Fidelity fidelity() const override { return Fidelity::Cached; }

    /** Re-fingerprints the schedule: a different beat map can never
     *  hit an entry cached under the old one. */
    void
    setTileBeats(std::unordered_map<uint32_t, unsigned> beats) override;

    /** Fingerprinted into the next run's cache key: a hit can never
     *  return timing for a different arrival schedule. */
    void setInputArrivals(std::vector<Cycles> arrivals) override;

    TimingResult run(const Program &prologue, const Program &step,
                     unsigned iterations) override;
    TimingResult
    runProfiled(const Program &prologue, const Program &step,
                unsigned iterations,
                std::vector<obs::ChainProfile> *chains) override;
    ProfiledRun runShared(const Program &prologue, const Program &step,
                          unsigned iterations) override;

    TimingModel &inner() { return *inner_; }
    uint64_t hits() const;
    uint64_t misses() const;
    size_t entries() const;
    void clearCache();

  private:
    struct Key
    {
        uint64_t prologueFp = 0;
        uint64_t stepFp = 0;
        uint64_t beatsFp = 0;
        uint64_t arrivalsFp = 0;
        unsigned iterations = 0;

        bool
        operator==(const Key &o) const
        {
            return prologueFp == o.prologueFp && stepFp == o.stepFp &&
                   beatsFp == o.beatsFp && arrivalsFp == o.arrivalsFp &&
                   iterations == o.iterations;
        }
    };

    struct KeyHash
    {
        size_t operator()(const Key &k) const;
    };

    struct Entry
    {
        TimingResult result;
        std::shared_ptr<const std::vector<obs::ChainProfile>> chains;
    };

    /** Look up (or simulate and insert) the entry for this run. */
    const Entry &lookup(const Program &prologue, const Program &step,
                        unsigned iterations);

    std::unique_ptr<TimingModel> inner_;
    uint64_t configFp_ = 0; //!< seed folded into every key hash

    mutable std::mutex mu_;
    std::unordered_map<Key, Entry, KeyHash> cache_;
    uint64_t beatsFp_ = 0;
    std::vector<Cycles> pendingArrivals_;
    bool arrivalsSet_ = false;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/**
 * Build a tier: CycleAccurate -> CycleAccurateModel, Fast ->
 * EventDrivenModel (warmup overridable via BW_TIMING_FAST_WARMUP),
 * Cached -> MemoTimingModel over a CycleAccurateModel (so hits are
 * bit-identical to ground truth).
 */
std::unique_ptr<TimingModel> makeTimingModel(Fidelity f,
                                             const NpuConfig &cfg);

/** Order-independent fingerprint of a tile-beat schedule. */
uint64_t tileBeatsFingerprint(
    const std::unordered_map<uint32_t, unsigned> &beats);

/** Sequence fingerprint of a program (op, mem, addr, value). */
uint64_t programFingerprint(const Program &prog);

/** Fingerprint of the timing-relevant NpuConfig fields. */
uint64_t configFingerprint(const NpuConfig &cfg);

} // namespace timing
} // namespace bw

#endif // BW_TIMING_TIMING_MODEL_H
