/**
 * @file
 * Results of a timing-simulator run: end-to-end cycles, per-component
 * occupancy, utilization, and per-iteration completion times from which
 * steady-state per-timestep latency is derived.
 */

#ifndef BW_TIMING_RESULT_H
#define BW_TIMING_RESULT_H

#include <vector>

#include "arch/npu_config.h"
#include "common/json.h"
#include "common/stats.h"
#include "common/units.h"

namespace bw {
namespace timing {

/** Outcome of NpuTiming::run(). */
struct TimingResult
{
    /** Completion cycle of the last write of the whole run. */
    Cycles totalCycles = 0;

    /** Primitive arithmetic ops dispatched (padded, per the program). */
    OpCount dispatchedOps = 0;
    /** Of which, ops dispatched into the MVM. */
    OpCount mvmOps = 0;

    /** Engine-cycles of MVM tile-engine occupancy (summed over engines). */
    Cycles mvmBusyCycles = 0;
    /** Unit-cycles of MFU function-unit occupancy. */
    Cycles mfuBusyCycles = 0;

    uint64_t instructionsDispatched = 0;
    uint64_t chainsExecuted = 0;
    uint64_t nativeTileOps = 0; //!< native-tile dot operations executed

    /** Completion cycle of each iteration's last write. */
    std::vector<Cycles> iterationEnd;

    /** Cycle each NetQ output vector was produced. */
    std::vector<Cycles> outputTimes;

    /** Component-level counters. */
    StatGroup stats{"npu"};

    /** Wall-clock latency at the configured clock. */
    double latencyMs(const NpuConfig &cfg) const
    {
        return cyclesToMs(totalCycles, cfg.clockMhz);
    }

    /**
     * Effective TFLOPS for a caller-supplied op count (use the *model's*
     * unpadded op count, as the paper does).
     */
    double
    tflops(const NpuConfig &cfg, OpCount model_ops) const
    {
        return effectiveTflops(model_ops, totalCycles, cfg.clockMhz);
    }

    /** Fraction of peak reached for a caller-supplied op count. */
    double
    utilization(const NpuConfig &cfg, OpCount model_ops) const
    {
        double peak = cfg.peakTflops();
        return peak > 0.0 ? tflops(cfg, model_ops) / peak : 0.0;
    }

    /** MVM tile-engine occupancy fraction over the whole run. */
    double
    mvmOccupancy(const NpuConfig &cfg) const
    {
        if (totalCycles == 0)
            return 0.0;
        return static_cast<double>(mvmBusyCycles) /
               (static_cast<double>(totalCycles) * cfg.tileEngines);
    }

    /**
     * Steady-state cycles per iteration: the mean inter-completion gap
     * after skipping pipeline-fill iterations. Falls back to the mean
     * over all iterations for short runs.
     */
    Cycles
    steadyStateIterationCycles() const
    {
        if (iterationEnd.size() < 2)
            return iterationEnd.empty() ? totalCycles : iterationEnd[0];
        size_t skip = std::min<size_t>(iterationEnd.size() / 4,
                                       iterationEnd.size() - 2);
        Cycles span = iterationEnd.back() - iterationEnd[skip];
        return span / (iterationEnd.size() - 1 - skip);
    }

    /** Machine-readable summary (counters, per-iteration ends, stats). */
    Json
    toJson() const
    {
        Json j = Json::object();
        j.set("total_cycles", totalCycles);
        j.set("dispatched_ops", dispatchedOps);
        j.set("mvm_ops", mvmOps);
        j.set("mvm_busy_cycles", mvmBusyCycles);
        j.set("mfu_busy_cycles", mfuBusyCycles);
        j.set("instructions_dispatched", instructionsDispatched);
        j.set("chains_executed", chainsExecuted);
        j.set("native_tile_ops", nativeTileOps);
        j.set("steady_state_iteration_cycles",
              steadyStateIterationCycles());
        Json iters = Json::array();
        for (Cycles c : iterationEnd)
            iters.push(c);
        j.set("iteration_end", std::move(iters));
        j.set("output_count", static_cast<uint64_t>(outputTimes.size()));
        j.set("stats", stats.toJson());
        return j;
    }
};

} // namespace timing
} // namespace bw

#endif // BW_TIMING_RESULT_H
