/**
 * @file
 * The BW NPU timing simulator (Section V microarchitecture).
 *
 * Models, at native-vector granularity, the flow of instruction chains
 * through the distributed microarchitecture:
 *
 *   scalar control processor (1 compound instruction / dispatchInterval
 *   cycles) -> top-level scheduler -> hierarchical decode & dispatch ->
 *   { MVM: matrix-vector tile engines (static MRF-bank tile assignment,
 *     lanes-wide dot-product engines, accumulation tree, cross-tile
 *     add-reduction unit) ; MFUs: per-unit crossbar-connected add/sub,
 *     multiply, activation function units } -> vector arbitration
 *   network -> register files / network queues.
 *
 * Structural hazards are modeled by per-resource occupancy timelines
 * (every resource is busy nativeDim/lanes cycles per native vector it
 * streams), and data hazards by a scoreboard of per-entry ready times.
 * Timing is data-independent: the simulator consumes the compiled
 * program, not tensor values, so multi-thousand-timestep RNN serving
 * simulates in milliseconds.
 */

#ifndef BW_TIMING_NPU_TIMING_H
#define BW_TIMING_NPU_TIMING_H

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/npu_config.h"
#include "isa/program.h"
#include "metrics/metrics.h"
#include "obs/trace.h"
#include "timing/resources.h"
#include "timing/result.h"
#include "timing/scoreboard.h"

namespace bw {
namespace timing {

/** Cycle-level performance model of one BW NPU instance. */
class NpuTiming
{
  public:
    explicit NpuTiming(const NpuConfig &cfg);

    const NpuConfig &config() const { return cfg_; }

    /**
     * Provide arrival cycles for NetQ input vectors. Each v_rd(NetQ)
     * consumes arrivals in FIFO order; when the schedule is exhausted,
     * further inputs are treated as already buffered (arrival cycle 0).
     * Used by the serving runtime to model request streams.
     */
    void setInputArrivals(std::vector<Cycles> arrivals);

    /**
     * Register thin tail tiles: per MRF entry, the number of streaming
     * beats (entries absent take the full nativeDim/lanes). Produced by
     * the compiler (CompiledModel::tileBeats).
     */
    void setTileBeats(std::unordered_map<uint32_t, unsigned> beats);

    /**
     * Attach a structured trace sink (non-owning; nullptr detaches and
     * falls back to the BW_TIMING_TRACE stderr sink, if enabled). The
     * sink receives one obs::TraceEvent per resource busy interval and
     * one obs::ChainProfile per retired chain. Tracing is purely
     * observational: simulated cycle counts are identical with any sink
     * attached or none.
     */
    void setTraceSink(obs::TraceSink *sink);

    /**
     * Attach a live-metrics registry (non-owning; nullptr detaches).
     * Each run() then publishes hardware performance counters derived
     * from the per-resource occupancy timelines: one
     * bw_npu_utilization{resource=...} gauge per resource class (MVM
     * tile engines, MFUs, reduce units, VRF read/write ports, network
     * queues, DRAM, control processor) plus cumulative
     * bw_npu_{runs,cycles,chains,instructions,native_tile_ops}_total
     * counters. Publication happens after simulation completes and is
     * purely observational: simulated cycle counts are identical with
     * a registry attached or not (tested).
     */
    void setMetricsRegistry(metrics::Registry *registry);

    /**
     * Simulate @p iterations back-to-back executions of @p prog (an RNN
     * timestep program replayed T times, per the paper's control-
     * processor loop). State (resource timelines, scoreboard) is reset
     * at the start of each run() call; consecutive iterations within a
     * run overlap in the pipeline exactly as the hardware does.
     */
    TimingResult run(const Program &prog, unsigned iterations = 1);

    /**
     * As run(prog, iterations), preceded by a one-shot prologue program
     * (the compiler's software-pipelining prefetch; may be empty).
     */
    TimingResult run(const Program &prologue, const Program &step,
                     unsigned iterations);

    /**
     * As run(prologue, step, iterations), additionally appending the
     * retired-chain profiles to @p chains in retirement order (the
     * per-request span-tracing feed). Any attached trace sink still
     * sees every event; purely observational — simulated cycle counts
     * are identical to run() (tested).
     */
    TimingResult runProfiled(const Program &prologue, const Program &step,
                             unsigned iterations,
                             std::vector<obs::ChainProfile> *chains);

    /**
     * Cumulative simulator state sampled at an iteration boundary: the
     * iteration's completion cycle plus every busy-cycle aggregate and
     * counter the final TimingResult is assembled from. The
     * event-driven fast model (timing_model.h) diffs consecutive
     * snapshots to detect a steady-state period and extrapolate the
     * remaining iterations without simulating them.
     */
    struct IterationSnapshot
    {
        Cycles end = 0; //!< completion cycle (prologue / iteration end)
        Cycles niosBusy = 0;
        Cycles mvmBusy = 0;
        Cycles reduceBusy = 0;
        Cycles mfuBusy = 0;
        Cycles vrfReadBusy = 0;
        Cycles vrfWriteBusy = 0;
        Cycles netInBusy = 0;
        Cycles netOutBusy = 0;
        Cycles dramBusy = 0;
        OpCount dispatchedOps = 0;
        OpCount mvmOps = 0;
        uint64_t instructions = 0;
        uint64_t chains = 0;
        uint64_t nativeTileOps = 0;
        uint64_t matrixTilesMoved = 0;
        size_t outputCount = 0;
    };

    /**
     * Attach a per-iteration snapshot collector (non-owning; nullptr
     * detaches). While attached, each run() clears the vector and
     * appends one snapshot after the prologue (index 0) and one after
     * every iteration, so a run of N iterations yields N+1 snapshots.
     * Purely observational: simulated cycle counts are identical with
     * or without a collector (tested).
     */
    void setIterationSnapshots(std::vector<IterationSnapshot> *out);

  private:
    struct ChainCtx;

    /** Emit one busy interval to the attached sink (no-op when none). */
    void emit(obs::EventKind kind, obs::ResClass res, uint16_t res_index,
              Cycles start, Cycles end, MemId mem = MemId::InitialVrf,
              uint32_t addr = 0);

    /** Record a scoreboard (RAW) wait on the current chain. */
    void noteDataStall(Cycles earliest, Cycles dep, MemId mem,
                       uint32_t addr);
    /** Record a NetQ input-arrival wait on the current chain. */
    void noteInputStall(Cycles earliest, Cycles arrival);
    /** Record a busy-resource wait on the current chain. */
    void noteStructStall(Cycles requested, Cycles granted,
                         obs::ResClass res);

    void execScalar(const Chain &c);
    Cycles execMatrixChain(const Program &prog, const Chain &c,
                           Cycles decode_done, TimingResult &res);
    Cycles execVectorChain(const Program &prog, const Chain &c,
                           Cycles decode_done, TimingResult &res);

    /** Pop the next NetQ input arrival (0 when pre-buffered). */
    Cycles nextInputArrival();

    /** Read one native block from a chain source. @p for_mvm selects
     *  the distributed MVM input path for InitialVrf reads. */
    Cycles readBlock(const Instruction &inst, uint32_t offset,
                     Cycles earliest, bool for_mvm);

    Server &readPort(MemId m);
    ServerArray &writePorts(MemId m);

    /** MFU op -> unit assignment for one chain (earliest-free greedy). */
    std::vector<size_t> assignMfuUnits(
        const std::vector<const Instruction *> &pointwise, Cycles at);

    NpuConfig cfg_;
    unsigned beats_;       //!< cycles per native vector on a stream
    unsigned dotLatency_;  //!< multiply + accumulation-tree latency
    TimingParams tp_;

    // Resources.
    Server nios_;
    Server topSched_;
    /** Second-level MVM scheduler: one decoder per tile engine, each
     *  dispatching one tile op per cycle (the HDD tree's E parallel
     *  tile-engine decoders, Fig. 6). */
    ServerArray mvmSched_;
    ServerArray engines_;
    /** Cross-tile accumulation: per-tile-engine accumulation units feed
     *  the add-reduction stage, so reduction bandwidth scales with the
     *  engine count (Fig. 6). */
    ServerArray reduceUnits_;
    ServerArray mfuUnits_; //!< [mfu * 3 + class]
    /**
     * InitialVrf bandwidth is physically distributed across the
     * per-tile-engine input VRFs (Fig. 5), so MVM input streaming and
     * MFU-bound chain reads do not contend for one port.
     */
    Server ivrfReadMvm_;
    Server ivrfRead_;
    Server asvrfRead_;
    Server mulvrfRead_;
    /** VRF write ports: the vector arbitration network carries one
     *  stream per tile engine into the distributed register-file
     *  banks, so write bandwidth scales with the engine count. */
    ServerArray ivrfWrite_, asvrfWrite_, mulvrfWrite_;
    Server netIn_, netOut_;
    Server dram_;

    Scoreboard board_;
    std::deque<Cycles> inputArrivals_;
    std::unordered_map<uint32_t, unsigned> tileBeats_;

    /** Publish per-run hardware counters to the attached registry. */
    void publishMetrics(const TimingResult &res);

    /** Append one iteration snapshot (no-op when none attached). */
    void captureSnapshot(const TimingResult &res, Cycles end);

    /** Iteration-snapshot collector (null = off, the default). */
    std::vector<IterationSnapshot> *snaps_ = nullptr;

    /** Active sink (null = tracing off, the zero-cost default). */
    obs::TraceSink *sink_ = nullptr;
    /** Live-metrics registry (null = publishing off). */
    metrics::Registry *metrics_ = nullptr;
    /** Stderr text sink owned when BW_TIMING_TRACE is set. */
    std::unique_ptr<obs::TraceSink> envSink_;
    /** Profile of the chain currently executing (valid while tracing). */
    ChainCtx *ctx_ = nullptr;
};

} // namespace timing
} // namespace bw

#endif // BW_TIMING_NPU_TIMING_H
