/**
 * @file
 * Data-readiness tracking (RAW hazards) over the architectural storage
 * spaces. The BW ISA has no hardware dependency checking across chains —
 * software schedules chains so producers precede consumers — but the
 * *timing* of a consumer chain still stalls until the producer's write
 * lands. The scoreboard records, per storage entry, the cycle at which
 * its most recent value becomes readable.
 */

#ifndef BW_TIMING_SCOREBOARD_H
#define BW_TIMING_SCOREBOARD_H

#include <array>
#include <unordered_map>

#include "arch/mem_id.h"
#include "common/units.h"

namespace bw {
namespace timing {

/** Per-entry ready cycles for every MemId space. Entries default to 0
 *  (pinned weights and preloaded state are ready at the start). */
class Scoreboard
{
  public:
    /** Latest ready time over entries [addr, addr+count) of @p m. */
    Cycles
    readyAt(MemId m, uint32_t addr, uint32_t count) const
    {
        const auto &space = spaces_[static_cast<size_t>(m)];
        Cycles t = 0;
        for (uint32_t i = 0; i < count; ++i) {
            auto it = space.find(addr + i);
            if (it != space.end())
                t = std::max(t, it->second);
        }
        return t;
    }

    /** Mark entries [addr, addr+count) of @p m ready at cycle @p t. */
    void
    setReady(MemId m, uint32_t addr, uint32_t count, Cycles t)
    {
        auto &space = spaces_[static_cast<size_t>(m)];
        for (uint32_t i = 0; i < count; ++i)
            space[addr + i] = t;
    }

    void
    reset()
    {
        for (auto &s : spaces_)
            s.clear();
    }

  private:
    std::array<std::unordered_map<uint32_t, Cycles>,
               static_cast<size_t>(MemId::NumMemIds)>
        spaces_;
};

} // namespace timing
} // namespace bw

#endif // BW_TIMING_SCOREBOARD_H
