#include "timing/timing_model.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace bw {
namespace timing {

// --- Fidelity selection ---

const char *
fidelityName(Fidelity f)
{
    switch (f) {
      case Fidelity::CycleAccurate: return "cycle_accurate";
      case Fidelity::Fast: return "fast";
      case Fidelity::Cached: return "cached";
      default: BW_PANIC("bad Fidelity %d", static_cast<int>(f));
    }
}

bool
parseFidelity(const std::string &s, Fidelity *out)
{
    if (s == "cycle" || s == "cycle_accurate" || s == "accurate") {
        *out = Fidelity::CycleAccurate;
        return true;
    }
    if (s == "fast" || s == "event") {
        *out = Fidelity::Fast;
        return true;
    }
    if (s == "cached" || s == "memo") {
        *out = Fidelity::Cached;
        return true;
    }
    return false;
}

Fidelity
fidelityFromEnv(Fidelity fallback)
{
    const char *v = std::getenv("BW_TIMING_MODE");
    if (!v || !*v)
        return fallback;
    Fidelity f;
    if (parseFidelity(v, &f))
        return f;
    BW_WARN("BW_TIMING_MODE=%s ignored (want cycle|fast|cached)", v);
    return fallback;
}

// --- Fingerprints ---

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    // Fold eight bytes through FNV-1a.
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

uint64_t
programFingerprint(const Program &prog)
{
    uint64_t h = fnvMix(kFnvOffset, prog.size());
    for (const Instruction &inst : prog.instructions()) {
        h = fnvMix(h, static_cast<uint64_t>(inst.op));
        h = fnvMix(h, static_cast<uint64_t>(inst.mem));
        h = fnvMix(h, inst.addr);
        h = fnvMix(h, static_cast<uint64_t>(inst.value));
    }
    return h;
}

uint64_t
tileBeatsFingerprint(const std::unordered_map<uint32_t, unsigned> &beats)
{
    // unordered_map iteration order is unspecified, so combine the
    // per-entry hashes with a commutative sum.
    uint64_t h = fnvMix(kFnvOffset, beats.size());
    uint64_t sum = 0;
    for (const auto &[addr, b] : beats)
        sum += splitmix64((static_cast<uint64_t>(addr) << 32) | b);
    return fnvMix(h, sum);
}

uint64_t
configFingerprint(const NpuConfig &cfg)
{
    uint64_t h = kFnvOffset;
    h = fnvMix(h, cfg.nativeDim);
    h = fnvMix(h, cfg.lanes);
    h = fnvMix(h, cfg.tileEngines);
    h = fnvMix(h, static_cast<uint64_t>(cfg.precision.signBits));
    h = fnvMix(h, static_cast<uint64_t>(cfg.precision.expBits));
    h = fnvMix(h, static_cast<uint64_t>(cfg.precision.mantBits));
    h = fnvMix(h, cfg.mrfSize);
    h = fnvMix(h, cfg.mrfIndexSpace);
    h = fnvMix(h, cfg.initialVrfSize);
    h = fnvMix(h, cfg.addSubVrfSize);
    h = fnvMix(h, cfg.multiplyVrfSize);
    h = fnvMix(h, cfg.dramBytes);
    h = fnvMix(h, cfg.mfus);
    h = fnvMix(h, cfg.fusPerMfu);
    uint64_t clk;
    static_assert(sizeof(clk) == sizeof(cfg.clockMhz));
    __builtin_memcpy(&clk, &cfg.clockMhz, sizeof(clk));
    h = fnvMix(h, clk);
    const TimingParams &tp = cfg.timing;
    const unsigned fields[] = {
        tp.dispatchInterval, tp.topSchedLatency,  tp.chainInterval,
        tp.l2SchedLatency,   tp.decoderLatency,   tp.vrfReadLatency,
        tp.vrfWriteLatency,  tp.mvmMulLatency,    tp.accumTreeStageLatency,
        tp.reduceStageLatency, tp.mfuAddLatency,  tp.mfuMulLatency,
        tp.mfuActLatency,    tp.crossbarLatency,  tp.arbNetLatency,
        tp.vectorUnitBeats,  tp.netBeats,         tp.netqLatency,
        tp.dramLatency,      tp.dramBytesPerCycle,
    };
    for (unsigned f : fields)
        h = fnvMix(h, f);
    return h;
}

// --- TimingModel ---

ProfiledRun
TimingModel::runShared(const Program &prologue, const Program &step,
                       unsigned iterations)
{
    auto chains = std::make_shared<std::vector<obs::ChainProfile>>();
    ProfiledRun pr;
    pr.result = runProfiled(prologue, step, iterations, chains.get());
    pr.chains = std::move(chains);
    return pr;
}

// --- CycleAccurateModel ---

void
CycleAccurateModel::setInputArrivals(std::vector<Cycles> arrivals)
{
    pendingArrivals_ = std::move(arrivals);
    arrivalsSet_ = true;
}

template <typename Fn>
TimingResult
CycleAccurateModel::withArrivals(Fn &&body)
{
    bool applied = arrivalsSet_;
    if (applied)
        sim_.setInputArrivals(std::move(pendingArrivals_));
    TimingResult res = body();
    if (applied) {
        // Next-run-only contract: drop whatever the run left unconsumed
        // (NpuTiming's deque persists across runs by design).
        sim_.setInputArrivals({});
        pendingArrivals_.clear();
        arrivalsSet_ = false;
    }
    return res;
}

TimingResult
CycleAccurateModel::run(const Program &prologue, const Program &step,
                        unsigned iterations)
{
    return withArrivals(
        [&] { return sim_.run(prologue, step, iterations); });
}

TimingResult
CycleAccurateModel::runProfiled(const Program &prologue,
                                const Program &step, unsigned iterations,
                                std::vector<obs::ChainProfile> *chains)
{
    return withArrivals([&] {
        return sim_.runProfiled(prologue, step, iterations, chains);
    });
}

// --- EventDrivenModel ---

EventDrivenModel::EventDrivenModel(const NpuConfig &cfg, Options opt)
    : sim_(cfg), opt_(opt)
{
    opt_.warmupIterations = std::max(1u, opt_.warmupIterations);
    opt_.maxPeriod = std::max(1u, opt_.maxPeriod);
    opt_.stablePeriods = std::max(2u, opt_.stablePeriods);
}

void
EventDrivenModel::setInputArrivals(std::vector<Cycles> arrivals)
{
    pendingArrivals_ = std::move(arrivals);
    arrivalsSet_ = true;
}

unsigned
EventDrivenModel::detectPeriod(
    const std::vector<NpuTiming::IterationSnapshot> &snaps) const
{
    using Snap = NpuTiming::IterationSnapshot;
    size_t w = snaps.size() - 1; // last iteration index (snaps[0] = fill)
    auto delta_eq = [&](size_t i, size_t j, unsigned p) {
        // Compare the (i-p, i] period against the (j-p, j] period:
        // every aggregate the final result is assembled from must
        // advance identically, and each boundary inside the period must
        // land at the same offset.
        const Snap &a1 = snaps[i], &a0 = snaps[i - p];
        const Snap &b1 = snaps[j], &b0 = snaps[j - p];
        auto eq = [](auto x1, auto x0, auto y1, auto y0) {
            return x1 - x0 == y1 - y0;
        };
        for (unsigned k = 0; k <= p; ++k) {
            if (!eq(snaps[i - p + k].end, a0.end, snaps[j - p + k].end,
                    b0.end))
                return false;
        }
        return eq(a1.niosBusy, a0.niosBusy, b1.niosBusy, b0.niosBusy) &&
               eq(a1.mvmBusy, a0.mvmBusy, b1.mvmBusy, b0.mvmBusy) &&
               eq(a1.reduceBusy, a0.reduceBusy, b1.reduceBusy,
                  b0.reduceBusy) &&
               eq(a1.mfuBusy, a0.mfuBusy, b1.mfuBusy, b0.mfuBusy) &&
               eq(a1.vrfReadBusy, a0.vrfReadBusy, b1.vrfReadBusy,
                  b0.vrfReadBusy) &&
               eq(a1.vrfWriteBusy, a0.vrfWriteBusy, b1.vrfWriteBusy,
                  b0.vrfWriteBusy) &&
               eq(a1.netInBusy, a0.netInBusy, b1.netInBusy,
                  b0.netInBusy) &&
               eq(a1.netOutBusy, a0.netOutBusy, b1.netOutBusy,
                  b0.netOutBusy) &&
               eq(a1.dramBusy, a0.dramBusy, b1.dramBusy, b0.dramBusy) &&
               eq(a1.dispatchedOps, a0.dispatchedOps, b1.dispatchedOps,
                  b0.dispatchedOps) &&
               eq(a1.mvmOps, a0.mvmOps, b1.mvmOps, b0.mvmOps) &&
               eq(a1.instructions, a0.instructions, b1.instructions,
                  b0.instructions) &&
               eq(a1.chains, a0.chains, b1.chains, b0.chains) &&
               eq(a1.nativeTileOps, a0.nativeTileOps, b1.nativeTileOps,
                  b0.nativeTileOps) &&
               eq(a1.matrixTilesMoved, a0.matrixTilesMoved,
                  b1.matrixTilesMoved, b0.matrixTilesMoved) &&
               eq(a1.outputCount, a0.outputCount, b1.outputCount,
                  b0.outputCount);
    };
    for (unsigned p = 1; p <= opt_.maxPeriod; ++p) {
        // The earliest snapshot touched is w - stablePeriods*p; keep it
        // past index 0 so the pipeline-fill iteration never votes.
        if (static_cast<size_t>(opt_.stablePeriods) * p >= w)
            break;
        bool stable = true;
        for (unsigned k = 1; k + 1 <= opt_.stablePeriods && stable; ++k)
            stable = delta_eq(w, w - k * p, p);
        if (stable)
            return p;
    }
    return 0;
}

TimingResult
EventDrivenModel::run(const Program &prologue, const Program &step,
                      unsigned iterations)
{
    return runImpl(prologue, step, iterations, nullptr);
}

TimingResult
EventDrivenModel::runProfiled(const Program &prologue, const Program &step,
                              unsigned iterations,
                              std::vector<obs::ChainProfile> *chains)
{
    return runImpl(prologue, step, iterations, chains);
}

TimingResult
EventDrivenModel::runImpl(const Program &prologue, const Program &step,
                          unsigned iterations,
                          std::vector<obs::ChainProfile> *chains)
{
    unsigned warmup = opt_.warmupIterations;

    auto exact = [&](unsigned iters) {
        ++fallbacks_;
        if (arrivalsSet_) {
            sim_.setInputArrivals(std::move(pendingArrivals_));
        }
        TimingResult res = chains
                               ? sim_.runProfiled(prologue, step, iters,
                                                  chains)
                               : sim_.run(prologue, step, iters);
        if (arrivalsSet_) {
            sim_.setInputArrivals({});
            pendingArrivals_.clear();
            arrivalsSet_ = false;
        }
        return res;
    };

    // An arrival schedule is per-request, aperiodic state: the exact
    // model is the only sound tier for it. Short runs have nothing to
    // extrapolate.
    if (arrivalsSet_ || iterations <= warmup + 1)
        return exact(iterations);

    std::vector<NpuTiming::IterationSnapshot> snaps;
    sim_.setIterationSnapshots(&snaps);
    std::vector<obs::ChainProfile> warm_chains;
    TimingResult warm;
    try {
        warm = chains ? sim_.runProfiled(prologue, step, warmup,
                                         &warm_chains)
                      : sim_.run(prologue, step, warmup);
    } catch (...) {
        sim_.setIterationSnapshots(nullptr);
        throw;
    }
    sim_.setIterationSnapshots(nullptr);

    unsigned period = detectPeriod(snaps);
    if (period == 0)
        return exact(iterations); // aperiodic tail: never guess

    unsigned w = warmup;
    // Chains in one period of the step program (per-iteration chain
    // count is a program constant: one profile per non-scalar chain).
    uint64_t chainsPerPeriod =
        static_cast<uint64_t>(period) *
        (snaps[w].chains - snaps[w - 1].chains);

    // Chain-profile fields advance at different slopes: retire times
    // move with the execution period, but the control processor's
    // dispatch front is purely rate-limited and runs ahead, so its
    // timestamps (and the stalls measured against them) grow with
    // their own per-period deltas. Extrapolation is sound per field
    // and per position only when those deltas repeated over the last
    // three warmup periods — anything else falls back to exact.
    if (chains) {
        uint64_t hi = snaps[w].chains;
        // detectPeriod's stablePeriods*p < w guard keeps three full
        // periods of step chains inside the warmup (past the prologue).
        for (uint64_t ci = hi - chainsPerPeriod; ci < hi; ++ci) {
            const obs::ChainProfile &c2 = warm_chains[ci];
            const obs::ChainProfile &c1 =
                warm_chains[ci - chainsPerPeriod];
            const obs::ChainProfile &c0 =
                warm_chains[ci - 2 * chainsPerPeriod];
            auto lin = [](Cycles a2, Cycles a1, Cycles a0) {
                return a2 - a1 == a1 - a0;
            };
            bool ok =
                c2.chain == c1.chain && c1.chain == c0.chain &&
                c2.kind == c1.kind && c1.kind == c0.kind &&
                c2.dataStallMem == c1.dataStallMem &&
                c1.dataStallMem == c0.dataStallMem &&
                c2.dataStallAddr == c1.dataStallAddr &&
                c1.dataStallAddr == c0.dataStallAddr &&
                c2.structRes == c1.structRes &&
                c1.structRes == c0.structRes &&
                lin(c2.dispatchStart, c1.dispatchStart,
                    c0.dispatchStart) &&
                lin(c2.dispatchDone, c1.dispatchDone, c0.dispatchDone) &&
                lin(c2.decodeDone, c1.decodeDone, c0.decodeDone) &&
                lin(c2.done, c1.done, c0.done) &&
                lin(c2.dataStall, c1.dataStall, c0.dataStall) &&
                lin(c2.inputStall, c1.inputStall, c0.inputStall) &&
                lin(c2.structStall, c1.structStall, c0.structStall) &&
                lin(c2.worstDataStall, c1.worstDataStall,
                    c0.worstDataStall) &&
                lin(c2.worstStructStall, c1.worstStructStall,
                    c0.worstStructStall);
            if (!ok)
                return exact(iterations);
        }
        chains->insert(chains->end(), warm_chains.begin(),
                       warm_chains.end());
    }
    ++extrapolated_;

    // Steady state: iteration W+j replicates iteration m = W+j-q*P
    // (the matching phase inside the last warmup period) shifted by
    // q*D cycles, where D is the period's cycle length.
    unsigned remaining = iterations - w;
    Cycles d = snaps[w].end - snaps[w - period].end;

    TimingResult res = warm;
    res.iterationEnd.reserve(iterations);
    res.outputTimes.reserve(warm.outputTimes.size() +
                            static_cast<size_t>(remaining) *
                                (snaps[w].outputCount -
                                 snaps[w - 1].outputCount));
    if (chains)
        chains->reserve(chains->size() +
                        static_cast<size_t>(remaining) *
                            (snaps[w].chains - snaps[w - 1].chains));
    for (unsigned j = 1; j <= remaining; ++j) {
        unsigned q = (j + period - 1) / period;
        unsigned m = w + j - q * period;
        Cycles shift = static_cast<Cycles>(q) * d;
        res.iterationEnd.push_back(snaps[m].end + shift);
        for (size_t oi = snaps[m - 1].outputCount;
             oi < snaps[m].outputCount; ++oi)
            res.outputTimes.push_back(warm.outputTimes[oi] + shift);
        if (chains) {
            // m lies in the last warmup period, so each chain advances
            // by q times its own validated per-period field delta.
            for (uint64_t ci = snaps[m - 1].chains; ci < snaps[m].chains;
                 ++ci) {
                obs::ChainProfile p = warm_chains[ci];
                const obs::ChainProfile &prev =
                    warm_chains[ci - chainsPerPeriod];
                auto adv = [&](Cycles &field, Cycles prv) {
                    field += static_cast<Cycles>(q) * (field - prv);
                };
                adv(p.dispatchStart, prev.dispatchStart);
                adv(p.dispatchDone, prev.dispatchDone);
                adv(p.decodeDone, prev.decodeDone);
                adv(p.done, prev.done);
                adv(p.dataStall, prev.dataStall);
                adv(p.inputStall, prev.inputStall);
                adv(p.structStall, prev.structStall);
                adv(p.worstDataStall, prev.worstDataStall);
                adv(p.worstStructStall, prev.worstStructStall);
                chains->push_back(p);
            }
        }
    }
    if (!res.iterationEnd.empty())
        res.totalCycles =
            std::max(res.totalCycles, res.iterationEnd.back());

    // Counters advance by one period's delta per full period, plus the
    // partial period's prefix.
    unsigned full = remaining / period;
    unsigned rem = remaining % period;
    auto extrap = [&](auto at_w, auto at_wp, auto at_rem) {
        return at_w + static_cast<decltype(at_w)>(full) * (at_w - at_wp) +
               (at_rem - at_wp);
    };
    const auto &sw = snaps[w];
    const auto &sp = snaps[w - period];
    const auto &sr = snaps[w - period + rem];
    res.dispatchedOps = extrap(sw.dispatchedOps, sp.dispatchedOps,
                               sr.dispatchedOps);
    res.mvmOps = extrap(sw.mvmOps, sp.mvmOps, sr.mvmOps);
    res.instructionsDispatched =
        extrap(sw.instructions, sp.instructions, sr.instructions);
    res.chainsExecuted = extrap(sw.chains, sp.chains, sr.chains);
    res.nativeTileOps =
        extrap(sw.nativeTileOps, sp.nativeTileOps, sr.nativeTileOps);
    res.mvmBusyCycles = extrap(sw.mvmBusy, sp.mvmBusy, sr.mvmBusy);
    res.mfuBusyCycles = extrap(sw.mfuBusy, sp.mfuBusy, sr.mfuBusy);

    res.stats.set("nios_busy_cycles",
                  extrap(sw.niosBusy, sp.niosBusy, sr.niosBusy));
    res.stats.set("mvm_busy_cycles", res.mvmBusyCycles);
    res.stats.set("mfu_busy_cycles", res.mfuBusyCycles);
    res.stats.set("reduce_busy_cycles",
                  extrap(sw.reduceBusy, sp.reduceBusy, sr.reduceBusy));
    res.stats.set("net_in_busy_cycles",
                  extrap(sw.netInBusy, sp.netInBusy, sr.netInBusy));
    res.stats.set("net_out_busy_cycles",
                  extrap(sw.netOutBusy, sp.netOutBusy, sr.netOutBusy));
    res.stats.set("dram_busy_cycles",
                  extrap(sw.dramBusy, sp.dramBusy, sr.dramBusy));
    res.stats.set("vrf_read_busy_cycles",
                  extrap(sw.vrfReadBusy, sp.vrfReadBusy, sr.vrfReadBusy));
    res.stats.set("vrf_write_busy_cycles",
                  extrap(sw.vrfWriteBusy, sp.vrfWriteBusy,
                         sr.vrfWriteBusy));
    res.stats.set("instructions", res.instructionsDispatched);
    res.stats.set("chains", res.chainsExecuted);
    res.stats.set("native_tile_ops", res.nativeTileOps);
    uint64_t tiles = extrap(sw.matrixTilesMoved, sp.matrixTilesMoved,
                            sr.matrixTilesMoved);
    if (tiles > 0)
        res.stats.set("matrix_tiles_moved", tiles);
    return res;
}

// --- MemoTimingModel ---

MemoTimingModel::MemoTimingModel(std::unique_ptr<TimingModel> inner)
    : inner_(std::move(inner)),
      configFp_(configFingerprint(inner_->config()))
{
}

size_t
MemoTimingModel::KeyHash::operator()(const Key &k) const
{
    uint64_t h = kFnvOffset;
    h = fnvMix(h, k.prologueFp);
    h = fnvMix(h, k.stepFp);
    h = fnvMix(h, k.beatsFp);
    h = fnvMix(h, k.arrivalsFp);
    h = fnvMix(h, k.iterations);
    return static_cast<size_t>(h);
}

void
MemoTimingModel::setTileBeats(std::unordered_map<uint32_t, unsigned> beats)
{
    std::lock_guard<std::mutex> lk(mu_);
    beatsFp_ = tileBeatsFingerprint(beats);
    inner_->setTileBeats(std::move(beats));
}

void
MemoTimingModel::setInputArrivals(std::vector<Cycles> arrivals)
{
    std::lock_guard<std::mutex> lk(mu_);
    pendingArrivals_ = std::move(arrivals);
    arrivalsSet_ = true;
}

const MemoTimingModel::Entry &
MemoTimingModel::lookup(const Program &prologue, const Program &step,
                        unsigned iterations)
{
    // Caller holds mu_. References into cache_ stay valid: entries are
    // never erased (short of clearCache) and unordered_map references
    // survive rehash.
    Key k;
    k.prologueFp = fnvMix(configFp_, programFingerprint(prologue));
    k.stepFp = programFingerprint(step);
    k.beatsFp = beatsFp_;
    k.iterations = iterations;
    if (arrivalsSet_) {
        uint64_t h = fnvMix(kFnvOffset, pendingArrivals_.size() + 1);
        for (Cycles c : pendingArrivals_)
            h = fnvMix(h, c);
        k.arrivalsFp = h;
    }

    auto it = cache_.find(k);
    if (it != cache_.end()) {
        ++hits_;
        // The arrival schedule was consumed by this (cached) run.
        pendingArrivals_.clear();
        arrivalsSet_ = false;
        return it->second;
    }
    ++misses_;
    if (arrivalsSet_) {
        inner_->setInputArrivals(std::move(pendingArrivals_));
        pendingArrivals_.clear();
        arrivalsSet_ = false;
    }
    // Always pay the profiled run on a miss (cycle-identical to an
    // unprofiled run, tested) so later runProfiled() calls hit too.
    ProfiledRun pr = inner_->runShared(prologue, step, iterations);
    Entry e;
    e.result = std::move(pr.result);
    e.chains = std::move(pr.chains);
    return cache_.emplace(k, std::move(e)).first->second;
}

TimingResult
MemoTimingModel::run(const Program &prologue, const Program &step,
                     unsigned iterations)
{
    std::lock_guard<std::mutex> lk(mu_);
    return lookup(prologue, step, iterations).result;
}

TimingResult
MemoTimingModel::runProfiled(const Program &prologue, const Program &step,
                             unsigned iterations,
                             std::vector<obs::ChainProfile> *chains)
{
    std::lock_guard<std::mutex> lk(mu_);
    const Entry &e = lookup(prologue, step, iterations);
    if (chains && e.chains)
        chains->insert(chains->end(), e.chains->begin(), e.chains->end());
    return e.result;
}

ProfiledRun
MemoTimingModel::runShared(const Program &prologue, const Program &step,
                           unsigned iterations)
{
    std::lock_guard<std::mutex> lk(mu_);
    const Entry &e = lookup(prologue, step, iterations);
    return ProfiledRun{e.result, e.chains};
}

uint64_t
MemoTimingModel::hits() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return hits_;
}

uint64_t
MemoTimingModel::misses() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return misses_;
}

size_t
MemoTimingModel::entries() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return cache_.size();
}

void
MemoTimingModel::clearCache()
{
    std::lock_guard<std::mutex> lk(mu_);
    cache_.clear();
}

// --- Factory ---

std::unique_ptr<TimingModel>
makeTimingModel(Fidelity f, const NpuConfig &cfg)
{
    switch (f) {
      case Fidelity::CycleAccurate:
        return std::make_unique<CycleAccurateModel>(cfg);
      case Fidelity::Fast: {
        EventDrivenModel::Options opt;
        if (const char *v = std::getenv("BW_TIMING_FAST_WARMUP")) {
            long w = std::atol(v);
            if (w > 0)
                opt.warmupIterations = static_cast<unsigned>(w);
        }
        return std::make_unique<EventDrivenModel>(cfg, opt);
      }
      case Fidelity::Cached:
        return std::make_unique<MemoTimingModel>(
            std::make_unique<CycleAccurateModel>(cfg));
      default:
        BW_PANIC("bad Fidelity %d", static_cast<int>(f));
    }
}

} // namespace timing
} // namespace bw
