/**
 * @file
 * Request-scoped span tracing: follow one inference from Session/Engine
 * admission to retired instruction chains.
 *
 * The event trace (obs/trace.h) answers "what did the simulated
 * hardware do" and the metrics registry answers "what are the
 * distributions" — neither can explain why request #4711 took 9 ms when
 * p50 is 2 ms. A SpanTracer assigns each admitted request a trace id
 * and records a span tree:
 *
 *   request                       admission -> completion
 *   +-- queue_wait                admission -> dequeue
 *   +-- dispatch                  dequeue -> service start
 *   +-- execute (replica r)       service start -> completion
 *       +-- chain[i]              per retired chain, from the timing
 *                                 simulator's ChainProfile, each leaf
 *                                 carrying the chain's stall breakdown
 *
 * Context propagates explicitly: a TraceContext rides on the queued
 * request (no thread-local magic), so spans survive the hop from the
 * submitting thread to the worker that serves the request. Head
 * sampling (SpanTracerOptions::sampleEvery, env BW_SPAN_SAMPLE) decides
 * at admission whether a request is traced at all; the decision is a
 * pure function of the deterministic request sequence number, so
 * virtual-time replays reproduce byte-identical exports.
 *
 * Recording is wait-free on the hot path: spans land in per-thread ring
 * buffers (the same sharding discipline as the metrics registry) that
 * are merged and sorted at export time. Like the engine's event trace,
 * collect()/exports are safe once the producers have quiesced (engine
 * drained or shut down).
 *
 * Three exports: Chrome/Perfetto async ("ph":"b"/"e") events that
 * overlay the event-trace timeline, ordered JSON span trees (validated
 * by validateSpanTreeJson), and — via the serving engine — histogram
 * exemplars: the slowest trace id per latency bucket in /metrics.json.
 */

#ifndef BW_OBS_SPAN_H
#define BW_OBS_SPAN_H

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/trace.h"

namespace bw {
namespace obs {

using TraceId = uint64_t;
using SpanId = uint32_t;

/** Node kinds of the canonical request span tree. */
enum class SpanKind : uint8_t
{
    Request = 0, //!< whole request: admission -> completion
    QueueWait,   //!< admission -> dequeue
    Dispatch,    //!< dequeue -> service start (batch admin, expiry)
    Execute,     //!< service on one accelerator replica
    Chain,       //!< one retired instruction chain within execute
    Route,       //!< cluster front-door routing decision (tree root)
    Hedge,       //!< one hedged dispatch attempt under a route span
    NumSpanKinds
};

const char *spanKindName(SpanKind k);

/** How the request span ended. */
enum class SpanOutcome : uint8_t
{
    Ok = 0,
    DeadlineExpired, //!< waited out its deadline in the queue
    Cancelled,       //!< abandoned by shutdown()
    Rejected,        //!< refused admission (QUEUE_FULL)
    Error,           //!< served, but service reported an error
};

const char *spanOutcomeName(SpanOutcome o);

/**
 * Trace context carried on a queued request. Propagated explicitly —
 * the submitting thread stamps it at admission, the worker thread reads
 * it at service — never through thread-local state.
 */
struct TraceContext
{
    TraceId trace = 0; //!< 0 = not sampled (tracing off for this request)

    bool sampled() const { return trace != 0; }
};

/**
 * One recorded span. Flat and POD-sized so the hot path can write it
 * into a preallocated ring slot without allocating; trees are
 * reassembled from (trace, parent) at export.
 */
struct SpanRecord
{
    TraceId trace = 0;
    SpanId id = 0;     //!< 1-based, unique within the trace
    SpanId parent = 0; //!< 0 = root
    SpanKind kind = SpanKind::Request;
    SpanOutcome outcome = SpanOutcome::Ok; //!< request spans only
    char chainKind = 0;                    //!< 'M'/'V' on chain spans
    uint32_t index = 0;   //!< replica (execute) / chain ordinal (chain)
    uint32_t chainId = 0; //!< chain spans: first-instruction index
    /** Execute spans: chain profiles available for the request's step
     *  count (larger than the recorded children when truncated). */
    uint32_t chainCount = 0;
    uint64_t startUs = 0; //!< microseconds on the owning clock
    uint64_t endUs = 0;

    // Chain spans: the cycle-domain interval and stall breakdown from
    // the timing simulator's ChainProfile (obs/trace.h).
    Cycles startCycle = 0;
    Cycles endCycle = 0;
    Cycles dispatchCycles = 0; //!< control-processor streaming
    Cycles decodeCycles = 0;   //!< schedule + hierarchical decode
    Cycles dataStallCycles = 0;
    Cycles inputStallCycles = 0;
    Cycles structStallCycles = 0;
    Cycles computeCycles = 0; //!< remainder: useful work
};

/** SpanTracer configuration. */
struct SpanTracerOptions
{
    /** Ring capacity per shard (per recording thread slot); the oldest
     *  spans of a shard are overwritten once its ring is full. */
    size_t shardCapacity = 1u << 14;

    /**
     * Head sampling: trace 1 in every @p sampleEvery admitted requests
     * (1 = every request, 0 = none). Decided at admission from the
     * request's deterministic sequence number, so the same arrival
     * schedule always samples the same requests.
     */
    unsigned sampleEvery = 1;

    /** Cap on chain child spans recorded under one execute span (the
     *  execute span's chainCount still reports the full total). */
    unsigned maxChainSpans = 256;

    /** Apply BW_SPAN_SAMPLE (sampleEvery) on top of @p base. */
    static SpanTracerOptions fromEnv(SpanTracerOptions base);
    static SpanTracerOptions fromEnv();
};

/**
 * Wait-free span recorder. record() claims a slot in the calling
 * thread's ring shard with one relaxed fetch_add and writes the POD
 * record in place — no locks, no allocation, engine workers never
 * contend. collect() merges the shards; call it only after producers
 * have quiesced (the same read discipline as Engine::trace()).
 */
class SpanTracer
{
  public:
    explicit SpanTracer(SpanTracerOptions opts = {});

    const SpanTracerOptions &options() const { return opts_; }

    /**
     * Head-sampling decision for the request with deterministic
     * sequence number @p seq (1-based). Returns a context whose trace
     * id equals @p seq when sampled, 0 otherwise.
     */
    TraceContext admit(uint64_t seq) const;

    /** Record one span (wait-free; see class comment). */
    void record(const SpanRecord &s);

    /** Merged spans, sorted by (trace, id). Safe after quiescence. */
    std::vector<SpanRecord> collect() const;

    /** Total spans offered to record() (including overwritten). */
    uint64_t recorded() const;
    /** Spans lost to ring overwrite. */
    uint64_t dropped() const;

    /** Drop all recorded spans (e.g. between a live run and a
     *  deterministic replay sharing one tracer). */
    void clear();

  private:
    static constexpr size_t kShards = 16;

    struct alignas(64) Shard
    {
        std::vector<SpanRecord> ring;
        std::atomic<uint64_t> count{0};
    };

    SpanTracerOptions opts_;
    std::array<Shard, kShards> shards_;
};

/**
 * Boundary timestamps of one served request, microseconds on the
 * engine's clock. Each boundary is converted from seconds exactly once
 * and shared between adjacent spans, so the direct children of the
 * request span partition it exactly: queue_wait + dispatch + execute
 * == request, to the microsecond, by construction.
 */
struct RequestSpans
{
    TraceId trace = 0;
    uint64_t admitUs = 0;
    uint64_t dequeueUs = 0;
    uint64_t serviceUs = 0; //!< service start (== doneUs when expired)
    uint64_t doneUs = 0;
    uint32_t replica = 0;
    /** Chain profiles available for the request's step count (recorded
     *  on the execute span; children may be fewer when truncated). */
    uint32_t chainCount = 0;
    SpanOutcome outcome = SpanOutcome::Ok;
};

/**
 * Record the canonical request tree. An Ok request records request +
 * queue_wait + dispatch + execute; an expired/cancelled request records
 * request + queue_wait only (it never reached service). Returns the
 * execute span id (0 when no execute span was recorded) for
 * recordChainSpans().
 *
 * @p parent nests the whole tree under an already recorded span (the
 * cluster front door's route span): span ids shift by @p parent and the
 * request span's parent becomes @p parent instead of being the root.
 */
SpanId recordRequestTree(SpanTracer &tracer, const RequestSpans &rs,
                         SpanId parent = 0);

/**
 * One cluster routing decision wrapped around a request: the span
 * covers [admitUs, doneUs] and carries the chosen engine and the
 * resident-model id. Recorded as the trace root (id 1, parentless) —
 * nest the request tree under it via recordRequestTree(..., parent).
 */
struct RouteSpan
{
    TraceId trace = 0;
    uint64_t admitUs = 0;
    uint64_t doneUs = 0;
    uint32_t engine = 0; //!< target engine index within the cluster
    uint32_t model = 0;  //!< resident-model id the request named
    SpanOutcome outcome = SpanOutcome::Ok;
};

/** Record a route root span; returns its id (0 when unsampled). */
SpanId recordRouteSpan(SpanTracer &tracer, const RouteSpan &rs);

/**
 * Attach chain leaf spans under execute span @p execute of @p trace,
 * one per ChainProfile (capped at the tracer's maxChainSpans). Chain
 * cycle intervals are mapped proportionally into the execute span's
 * [serviceUs, doneUs] window; the cycle-exact interval and the stall
 * breakdown ride along as attributes.
 */
void recordChainSpans(SpanTracer &tracer, TraceId trace, SpanId execute,
                      uint64_t service_us, uint64_t done_us,
                      const std::vector<ChainProfile> &chains,
                      Cycles total_cycles);

/**
 * Ordered span-tree JSON document: {schema: "bw.spans/1", spans,
 * dropped, traces: [{trace, root: {name, id, start_us, end_us, dur_us,
 * ..., children: [...]}}]}. Traces ascend by id, children by (start,
 * id); spans whose parent was lost to ring overwrite are dropped with
 * their trace marked incomplete. Deterministic for deterministic input.
 */
Json spanTreeJson(const std::vector<SpanRecord> &spans,
                  uint64_t dropped = 0);

/** spanTreeJson(tracer.collect(), tracer.dropped()). */
Json spanTreeJson(const SpanTracer &tracer);

/**
 * Validate a spanTreeJson() document against the bw.spans/1 schema:
 * required members and types, request- or route-named roots (the
 * latter from the cluster front door), ids unique within a
 * trace, end >= start, dur consistent, every child interval inside its
 * parent. Returns OK or InvalidArgument naming the first violation.
 */
Status validateSpanTreeJson(const Json &doc);

/**
 * Append the spans as Chrome async events ("ph":"b"/"e", cat
 * "bw.span", id = trace id) to @p chrome_doc's traceEvents — the
 * request waterfall then overlays the event-trace/counter timeline in
 * Perfetto. @p chrome_doc may be a chromeTraceJson() document or any
 * object with (or without) a traceEvents array.
 */
void appendSpanEvents(Json &chrome_doc,
                      const std::vector<SpanRecord> &spans);

/**
 * As appendSpanEvents, but sourced from a spanTreeJson() document (the
 * on-disk export) — validates it first. Used by `bw_trace merge` to
 * fold a span export and an event-trace export into one
 * Perfetto-loadable file.
 */
Status appendSpanTreeDocEvents(Json &chrome_doc, const Json &span_doc);

} // namespace obs
} // namespace bw

#endif // BW_OBS_SPAN_H
