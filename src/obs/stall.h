/**
 * @file
 * Stall attribution over retired-chain profiles: the software analogue
 * of the paper's UDM-vs-SDM decomposition. Every cycle of the run's
 * end-to-end span is attributed to exactly one reason — instruction
 * delivery (dispatch/decode), data hazards per register file, input
 * availability, structural hazards per resource class, or useful
 * compute — so the attributed cycles always sum to the total.
 */

#ifndef BW_OBS_STALL_H
#define BW_OBS_STALL_H

#include <string>
#include <vector>

#include "common/json.h"
#include "common/units.h"
#include "obs/trace.h"

namespace bw {
namespace obs {

/** One attributed reason with its share of the end-to-end cycles. */
struct StallBucket
{
    std::string reason; //!< e.g. "structural:tile_engine", "data:ivrf"
    Cycles cycles = 0;
    double fraction = 0; //!< of the run's total cycles
};

/** Aggregated stall attribution for one run. */
struct StallReport
{
    Cycles totalCycles = 0;
    /** Sum over buckets; equals totalCycles by construction. */
    Cycles attributedCycles = 0;
    uint64_t chains = 0;
    /** Buckets sorted by cycles, descending. */
    std::vector<StallBucket> buckets;

    /** Text report: "top stall reasons" table plus the worst chains. */
    std::string render(size_t top_chains = 5) const;

    Json toJson() const;

    /** For the worst-chain section of render(). */
    std::vector<ChainProfile> worstChains;
};

/**
 * Attribute the run's [0, total_cycles) span across stall reasons.
 *
 * Chains retire in completion order; the span each chain adds to the
 * end-to-end time (its completion minus the previous frontier) is split
 * proportionally to that chain's measured wait breakdown — dispatch,
 * decode, data hazard (per memory space), input wait, structural hazard
 * (per resource class) — with the remainder counted as compute.
 */
StallReport buildStallReport(const std::vector<ChainProfile> &chains,
                             Cycles total_cycles);

} // namespace obs
} // namespace bw

#endif // BW_OBS_STALL_H
