#include "obs/fleet.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <unordered_map>

#include "common/logging.h"
#include "metrics/exposition.h"

namespace bw {
namespace obs {

// --- FleetRegistry ---

void
FleetRegistry::setClusterRegistry(const metrics::Registry *registry)
{
    cluster_ = registry;
}

void
FleetRegistry::addShard(std::string shard, std::string group,
                        const metrics::Registry *registry,
                        const serve::SloMonitor *slo)
{
    FleetShardSource s;
    s.shard = std::move(shard);
    s.group = std::move(group);
    s.registry = registry;
    s.slo = slo;
    shards_.push_back(std::move(s));
}

std::vector<metrics::MetricSnapshot>
FleetRegistry::federate() const
{
    std::vector<metrics::MetricSnapshot> raw;
    if (cluster_) {
        std::vector<metrics::MetricSnapshot> c = cluster_->collect();
        raw.insert(raw.end(), std::make_move_iterator(c.begin()),
                   std::make_move_iterator(c.end()));
    }
    for (const FleetShardSource &s : shards_) {
        if (!s.registry)
            continue;
        for (metrics::MetricSnapshot m : s.registry->collect()) {
            m.labels.emplace_back("shard", s.shard);
            m.labels.emplace_back("group", s.group);
            raw.push_back(std::move(m));
        }
    }

    // Regroup family-major in order of first appearance: the text
    // exposition emits one # HELP / # TYPE pair per run of one name,
    // and the format forbids a family appearing twice — which it
    // would, interleaved, once several shards export the same series.
    std::vector<std::vector<metrics::MetricSnapshot>> buckets;
    std::unordered_map<std::string, size_t> family;
    for (metrics::MetricSnapshot &m : raw) {
        auto it = family.find(m.name);
        if (it == family.end()) {
            it = family.emplace(m.name, buckets.size()).first;
            buckets.emplace_back();
        }
        buckets[it->second].push_back(std::move(m));
    }
    std::vector<metrics::MetricSnapshot> out;
    out.reserve(raw.size());
    for (std::vector<metrics::MetricSnapshot> &b : buckets) {
        for (metrics::MetricSnapshot &m : b)
            out.push_back(std::move(m));
    }
    return out;
}

std::string
FleetRegistry::prometheus() const
{
    return metrics::prometheusText(federate());
}

Json
FleetRegistry::metricsJson() const
{
    return metrics::metricsJson(federate());
}

namespace {

Json
rollupWindowJson(const serve::SloWindowEval &ev)
{
    Json j = Json::object();
    j.set("good", ev.good);
    j.set("bad", ev.bad);
    j.set("bad_fraction", ev.badFraction);
    j.set("burn_rate", ev.burnRate);
    return j;
}

/// Recompute the derived fields on an aggregated window (same math as
/// SloMonitor::evalWindow, applied to the fleet-summed counts).
void
finishWindow(serve::SloWindowEval &ev, double objective)
{
    uint64_t total = ev.good + ev.bad;
    ev.badFraction = total > 0 ? static_cast<double>(ev.bad) /
                                     static_cast<double>(total)
                               : 0.0;
    double budget = 1.0 - objective;
    ev.burnRate = budget > 0 ? ev.badFraction / budget : 0.0;
}

} // namespace

Json
FleetRegistry::sloRollupJson() const
{
    const serve::SloMonitor *first = nullptr;
    for (const FleetShardSource &s : shards_) {
        if (s.slo) {
            first = s.slo;
            break;
        }
    }
    BW_ASSERT(first, "fleet SLO rollup: no shard SLO monitors "
                     "registered");
    const serve::SloOptions &opts = first->options();
    size_t nclasses = opts.classes.size();

    std::vector<serve::SloClassEval> agg(nclasses);
    for (size_t c = 0; c < nclasses; ++c)
        agg[c].name = opts.classes[c].name;
    uint64_t high_us = 0;
    for (const FleetShardSource &s : shards_) {
        if (!s.slo)
            continue;
        high_us = std::max(high_us, s.slo->highWaterUs());
        std::vector<serve::SloClassEval> evals = s.slo->snapshot();
        BW_ASSERT(evals.size() == nclasses,
                  "fleet SLO rollup: shard '%s' has %zu classes, "
                  "expected %zu (the cluster shares one ladder)",
                  s.shard.c_str(), evals.size(), nclasses);
        for (size_t c = 0; c < nclasses; ++c) {
            const serve::SloClassEval &ev = evals[c];
            serve::SloClassEval &a = agg[c];
            a.requests += ev.requests;
            a.latencyBreaches += ev.latencyBreaches;
            a.availabilityBreaches += ev.availabilityBreaches;
            auto sum = [](serve::SloWindowEval &into,
                          const serve::SloWindowEval &from) {
                into.good += from.good;
                into.bad += from.bad;
            };
            sum(a.latencyFast, ev.latencyFast);
            sum(a.latencySlow, ev.latencySlow);
            sum(a.availFast, ev.availFast);
            sum(a.availSlow, ev.availSlow);
        }
    }
    for (serve::SloClassEval &a : agg) {
        finishWindow(a.latencyFast, opts.latencyObjective);
        finishWindow(a.latencySlow, opts.latencyObjective);
        finishWindow(a.availFast, opts.availabilityObjective);
        finishWindow(a.availSlow, opts.availabilityObjective);
        a.latencyFiring = a.latencyFast.burnRate > opts.pageBurnRate &&
                          a.latencySlow.burnRate > opts.pageBurnRate;
        a.availabilityFiring =
            a.availFast.burnRate > opts.pageBurnRate &&
            a.availSlow.burnRate > opts.pageBurnRate;
    }

    // Same member order as SloMonitor::sloJson, so the rollup passes
    // validateSloJson and diffs cleanly against per-shard documents.
    Json doc = Json::object();
    doc.set("schema", "bw.slo/1");
    Json obj = Json::object();
    obj.set("latency", opts.latencyObjective);
    obj.set("availability", opts.availabilityObjective);
    doc.set("objectives", std::move(obj));
    Json win = Json::object();
    win.set("fast_us", opts.fastWindowUs);
    win.set("slow_us", opts.slowWindowUs);
    win.set("bucket_us", opts.bucketUs);
    doc.set("windows", std::move(win));
    doc.set("page_burn_rate", opts.pageBurnRate);
    doc.set("evaluated_at_us", high_us);
    doc.set("shards", static_cast<uint64_t>(shards_.size()));

    Json classes = Json::array();
    for (size_t c = 0; c < agg.size(); ++c) {
        const serve::SloClassEval &ev = agg[c];
        Json j = Json::object();
        j.set("name", ev.name);
        if (opts.classes[c].maxDeadlineMs > 0)
            j.set("max_deadline_ms", opts.classes[c].maxDeadlineMs);
        j.set("latency_target_ms", opts.classes[c].latencyTargetMs);
        j.set("requests", ev.requests);
        j.set("latency_breaches", ev.latencyBreaches);
        j.set("availability_breaches", ev.availabilityBreaches);
        Json lat = Json::object();
        lat.set("fast", rollupWindowJson(ev.latencyFast));
        lat.set("slow", rollupWindowJson(ev.latencySlow));
        lat.set("firing", ev.latencyFiring);
        j.set("latency", std::move(lat));
        Json avail = Json::object();
        avail.set("fast", rollupWindowJson(ev.availFast));
        avail.set("slow", rollupWindowJson(ev.availSlow));
        avail.set("firing", ev.availabilityFiring);
        j.set("availability", std::move(avail));
        classes.push(std::move(j));
    }
    doc.set("classes", std::move(classes));
    return doc;
}

// --- RouteStreamWriter ---

RouteStreamWriter::RouteStreamWriter(StreamSink sink, std::string policy,
                                     unsigned engines, size_t classes)
    : sink_(std::move(sink)), engines_(engines),
      shedByClass_(classes > 0 ? classes : 1, 0)
{
    Json h = Json::object();
    h.set("schema", "bw.routestream/1");
    h.set("policy", std::move(policy));
    h.set("engines", engines_);
    emit(h);
}

bool
RouteStreamWriter::emit(const Json &j)
{
    if (failed_)
        return false;
    std::string line = j.dump();
    line += '\n';
    bytes_ += line.size();
    if (!sink_ || !sink_(line)) {
        failed_ = true;
        return false;
    }
    return true;
}

bool
RouteStreamWriter::decision(uint64_t seq, uint32_t model, uint32_t cls,
                            int32_t engine)
{
    if (engine < 0) {
        ++shed_;
        ++shedByClass_[std::min<size_t>(cls, shedByClass_.size() - 1)];
    } else {
        ++routed_;
    }
    Json r = Json::object();
    r.set("seq", seq);
    r.set("model", model);
    r.set("class", cls);
    r.set("engine", engine);
    return emit(r);
}

bool
RouteStreamWriter::finish()
{
    if (finished_)
        return !failed_;
    finished_ = true;
    Json s = Json::object();
    s.set("summary", true);
    s.set("rows", rows());
    s.set("routed", routed_);
    s.set("shed", shed_);
    Json by_class = Json::array();
    for (uint64_t c : shedByClass_)
        by_class.push(c);
    s.set("shed_by_class", std::move(by_class));
    return emit(s);
}

// --- Stream validators ---

namespace {

/// Pull the next NDJSON line; distinguishes "clean end of stream" from
/// "trailing junk". A final line without '\n' is still returned (the
/// validators then reject it on content, not on framing).
bool
nextLine(std::istream &in, std::string *line)
{
    while (std::getline(in, *line)) {
        if (!line->empty())
            return true;
    }
    return false;
}

Status
parseLine(const std::string &line, size_t lineno, Json *out)
{
    try {
        *out = Json::parse(line);
    } catch (const std::exception &e) {
        return Status::invalidArgument(detail::format(
            "line %zu is not valid JSON (truncated stream?): %s",
            lineno, e.what()));
    }
    if (out->type() != Json::Type::Object)
        return Status::invalidArgument(
            detail::format("line %zu is not a JSON object", lineno));
    return Status();
}

Status
requireInt(const Json &obj, const char *key, size_t lineno,
           int64_t *out = nullptr)
{
    const Json *v = obj.find(key);
    if (!v || !v->isNumber())
        return Status::invalidArgument(detail::format(
            "line %zu missing numeric field '%s'", lineno, key));
    if (out)
        *out = v->asInt();
    return Status();
}

Status
streamHeader(std::istream &in, const char *schema, Json *header)
{
    std::string line;
    if (!nextLine(in, &line))
        return Status::invalidArgument("empty stream (no header line)");
    Status st = parseLine(line, 1, header);
    if (!st.ok())
        return st;
    const Json *tag = header->find("schema");
    if (!tag || tag->type() != Json::Type::String ||
        tag->asString() != schema)
        return Status::invalidArgument(
            detail::format("header schema tag is not %s", schema));
    return Status();
}

} // namespace

Status
validateRouteStreamJson(std::istream &in)
{
    Json header;
    Status st = streamHeader(in, "bw.routestream/1", &header);
    if (!st.ok())
        return st;
    int64_t engines = 0;
    st = requireInt(header, "engines", 1, &engines);
    if (!st.ok())
        return st;
    if (engines < 1)
        return Status::invalidArgument("header engines must be >= 1");
    const Json *policy = header.find("policy");
    if (!policy || policy->type() != Json::Type::String)
        return Status::invalidArgument("header missing policy");

    uint64_t routed = 0, shed = 0, last_seq = 0;
    size_t lineno = 1;
    std::string line;
    bool saw_summary = false;
    while (nextLine(in, &line)) {
        ++lineno;
        Json row;
        st = parseLine(line, lineno, &row);
        if (!st.ok())
            return st;
        if (row.contains("summary")) {
            int64_t rows = 0, srouted = 0, sshed = 0;
            for (const char *key : {"rows", "routed", "shed"}) {
                st = requireInt(row, key, lineno);
                if (!st.ok())
                    return st;
            }
            rows = row.find("rows")->asInt();
            srouted = row.find("routed")->asInt();
            sshed = row.find("shed")->asInt();
            if (static_cast<uint64_t>(srouted) != routed ||
                static_cast<uint64_t>(sshed) != shed ||
                static_cast<uint64_t>(rows) != routed + shed)
                return Status::invalidArgument(detail::format(
                    "summary counters (rows %lld, routed %lld, shed "
                    "%lld) do not match the %llu routed + %llu shed "
                    "rows streamed",
                    static_cast<long long>(rows),
                    static_cast<long long>(srouted),
                    static_cast<long long>(sshed),
                    static_cast<unsigned long long>(routed),
                    static_cast<unsigned long long>(shed)));
            const Json *bc = row.find("shed_by_class");
            if (!bc || bc->type() != Json::Type::Array)
                return Status::invalidArgument(
                    "summary missing shed_by_class array");
            uint64_t by_class = 0;
            for (size_t i = 0; i < bc->size(); ++i)
                by_class += static_cast<uint64_t>(bc->at(i).asInt());
            if (by_class != shed)
                return Status::invalidArgument(
                    "summary shed_by_class does not sum to shed");
            saw_summary = true;
            break;
        }
        int64_t seq = 0, engine = 0;
        for (const char *key : {"seq", "model", "class", "engine"}) {
            st = requireInt(row, key, lineno);
            if (!st.ok())
                return st;
        }
        seq = row.find("seq")->asInt();
        engine = row.find("engine")->asInt();
        if (static_cast<uint64_t>(seq) <= last_seq)
            return Status::invalidArgument(detail::format(
                "line %zu seq %lld is not ascending", lineno,
                static_cast<long long>(seq)));
        last_seq = static_cast<uint64_t>(seq);
        // -1 = front-door shed, -2 = no healthy shard (unavailable).
        if (engine < -2 || engine >= engines)
            return Status::invalidArgument(detail::format(
                "line %zu engine %lld out of range [-2, %lld)", lineno,
                static_cast<long long>(engine),
                static_cast<long long>(engines)));
        engine < 0 ? ++shed : ++routed;
    }
    if (!saw_summary)
        return Status::invalidArgument(
            "stream ended without a summary trailer (truncated?)");
    if (nextLine(in, &line))
        return Status::invalidArgument(
            "trailing data after the summary trailer");
    return Status();
}

Status
validateRouteStreamFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::invalidArgument(
            detail::format("cannot read %s", path.c_str()));
    return validateRouteStreamJson(in);
}

// --- Span streaming ---

Status
streamSpanTreesNdjson(const std::vector<SpanRecord> &spans,
                      uint64_t dropped, const StreamSink &sink)
{
    if (!sink)
        return Status::invalidArgument("span stream: null sink");
    std::vector<const SpanRecord *> ordered;
    ordered.reserve(spans.size());
    for (const SpanRecord &s : spans)
        ordered.push_back(&s);
    std::sort(ordered.begin(), ordered.end(),
              [](const SpanRecord *a, const SpanRecord *b) {
                  return a->trace != b->trace ? a->trace < b->trace
                                              : a->id < b->id;
              });

    Json header = Json::object();
    header.set("schema", "bw.spanstream/1");
    std::string line = header.dump();
    line += '\n';
    if (!sink(line))
        return Status::unavailable("span stream: sink aborted");

    uint64_t traces = 0, exported = 0, incomplete = 0;
    size_t i = 0;
    while (i < ordered.size()) {
        TraceId t = ordered[i]->trace;
        size_t j = i;
        std::vector<SpanRecord> slice;
        while (j < ordered.size() && ordered[j]->trace == t) {
            slice.push_back(*ordered[j]);
            ++j;
        }
        i = j;
        // Render this one trace through the canonical tree builder —
        // memory is bounded by the largest single trace.
        Json sub = spanTreeJson(slice, 0);
        const Json *sub_traces = sub.find("traces");
        if (const Json *inc = sub.find("incomplete_traces"))
            incomplete += static_cast<uint64_t>(inc->asInt());
        if (!sub_traces || sub_traces->size() == 0)
            continue; // rootless trace: counted incomplete, not emitted
        exported += static_cast<uint64_t>(sub.find("spans")->asInt());
        ++traces;
        line = sub_traces->at(0).dump();
        line += '\n';
        if (!sink(line))
            return Status::unavailable("span stream: sink aborted");
    }

    Json summary = Json::object();
    summary.set("summary", true);
    summary.set("traces", traces);
    summary.set("spans", exported);
    summary.set("dropped", dropped);
    if (incomplete > 0)
        summary.set("incomplete_traces", incomplete);
    line = summary.dump();
    line += '\n';
    if (!sink(line))
        return Status::unavailable("span stream: sink aborted");
    return Status();
}

Status
streamSpanTreesNdjson(const SpanTracer &tracer, const StreamSink &sink)
{
    return streamSpanTreesNdjson(tracer.collect(), tracer.dropped(),
                                 sink);
}

Status
validateSpanStreamJson(std::istream &in)
{
    Json header;
    Status st = streamHeader(in, "bw.spanstream/1", &header);
    if (!st.ok())
        return st;
    uint64_t traces = 0, last_trace = 0;
    size_t lineno = 1;
    std::string line;
    bool saw_summary = false;
    while (nextLine(in, &line)) {
        ++lineno;
        Json row;
        st = parseLine(line, lineno, &row);
        if (!st.ok())
            return st;
        if (row.contains("summary")) {
            int64_t n = 0;
            st = requireInt(row, "traces", lineno, &n);
            if (!st.ok())
                return st;
            if (static_cast<uint64_t>(n) != traces)
                return Status::invalidArgument(detail::format(
                    "summary declares %lld traces, stream carried %llu",
                    static_cast<long long>(n),
                    static_cast<unsigned long long>(traces)));
            st = requireInt(row, "spans", lineno);
            if (!st.ok())
                return st;
            saw_summary = true;
            break;
        }
        int64_t trace = 0;
        st = requireInt(row, "trace", lineno, &trace);
        if (!st.ok())
            return st;
        if (static_cast<uint64_t>(trace) <= last_trace)
            return Status::invalidArgument(detail::format(
                "line %zu trace %lld is not ascending", lineno,
                static_cast<long long>(trace)));
        last_trace = static_cast<uint64_t>(trace);
        const Json *root = row.find("root");
        if (!root || root->type() != Json::Type::Object)
            return Status::invalidArgument(detail::format(
                "line %zu trace entry missing root object", lineno));
        ++traces;
    }
    if (!saw_summary)
        return Status::invalidArgument(
            "stream ended without a summary trailer (truncated?)");
    if (nextLine(in, &line))
        return Status::invalidArgument(
            "trailing data after the summary trailer");
    return Status();
}

// --- Flight streaming ---

Status
streamFlightNdjson(const FlightRecorder &recorder, const StreamSink &sink,
                   const ChainProfileFn &chains_for)
{
    if (!sink)
        return Status::invalidArgument("flight stream: null sink");
    Json header = Json::object();
    header.set("schema", "bw.flightstream/1");
    header.set("window_us", recorder.options().windowUs);
    header.set("slowest_k", recorder.options().slowestK);
    std::string line = header.dump();
    line += '\n';
    if (!sink(line))
        return Status::unavailable("flight stream: sink aborted");

    std::vector<FlightRecord> promoted = recorder.promoted();
    for (const FlightRecord &r : promoted) {
        // One record per line: reuse the canonical single-record
        // export, folding its span tree into the record object.
        Json one = flightJson({r}, recorder.options(), 1, 0, chains_for);
        Json row = one.find("promoted")->at(0);
        row.set("spans", *one.find("spans"));
        line = row.dump();
        line += '\n';
        if (!sink(line))
            return Status::unavailable("flight stream: sink aborted");
    }

    Json summary = Json::object();
    summary.set("summary", true);
    summary.set("promoted", static_cast<uint64_t>(promoted.size()));
    summary.set("recorded", recorder.recorded());
    summary.set("dropped", recorder.dropped());
    line = summary.dump();
    line += '\n';
    if (!sink(line))
        return Status::unavailable("flight stream: sink aborted");
    return Status();
}

Status
validateFlightStreamJson(std::istream &in)
{
    Json header;
    Status st = streamHeader(in, "bw.flightstream/1", &header);
    if (!st.ok())
        return st;
    for (const char *key : {"window_us", "slowest_k"}) {
        st = requireInt(header, key, 1);
        if (!st.ok())
            return st;
    }
    uint64_t promoted = 0, last_seq = 0;
    size_t lineno = 1;
    std::string line;
    bool saw_summary = false;
    while (nextLine(in, &line)) {
        ++lineno;
        Json row;
        st = parseLine(line, lineno, &row);
        if (!st.ok())
            return st;
        if (row.contains("summary")) {
            int64_t n = 0;
            st = requireInt(row, "promoted", lineno, &n);
            if (!st.ok())
                return st;
            if (static_cast<uint64_t>(n) != promoted)
                return Status::invalidArgument(detail::format(
                    "summary declares %lld promoted records, stream "
                    "carried %llu",
                    static_cast<long long>(n),
                    static_cast<unsigned long long>(promoted)));
            for (const char *key : {"recorded", "dropped"}) {
                st = requireInt(row, key, lineno);
                if (!st.ok())
                    return st;
            }
            saw_summary = true;
            break;
        }
        int64_t seq = 0;
        for (const char *key : {"seq", "id", "replica", "steps",
                                "admit_us", "dequeue_us", "service_us",
                                "done_us", "latency_us"}) {
            st = requireInt(row, key, lineno);
            if (!st.ok())
                return st;
        }
        seq = row.find("seq")->asInt();
        if (static_cast<uint64_t>(seq) <= last_seq)
            return Status::invalidArgument(detail::format(
                "line %zu seq %lld is not ascending", lineno,
                static_cast<long long>(seq)));
        last_seq = static_cast<uint64_t>(seq);
        const Json *cls = row.find("class");
        if (!cls || cls->type() != Json::Type::String)
            return Status::invalidArgument(detail::format(
                "line %zu missing class name", lineno));
        uint64_t admit = static_cast<uint64_t>(
            row.find("admit_us")->asInt());
        uint64_t dequeue = static_cast<uint64_t>(
            row.find("dequeue_us")->asInt());
        uint64_t service = static_cast<uint64_t>(
            row.find("service_us")->asInt());
        uint64_t done =
            static_cast<uint64_t>(row.find("done_us")->asInt());
        if (admit > dequeue || dequeue > service || service > done)
            return Status::invalidArgument(detail::format(
                "line %zu timestamps out of order", lineno));
        const Json *spans = row.find("spans");
        if (!spans || spans->type() != Json::Type::Object)
            return Status::invalidArgument(detail::format(
                "line %zu missing embedded spans document", lineno));
        ++promoted;
    }
    if (!saw_summary)
        return Status::invalidArgument(
            "stream ended without a summary trailer (truncated?)");
    if (nextLine(in, &line))
        return Status::invalidArgument(
            "trailing data after the summary trailer");
    return Status();
}

Status
validateStreamFile(const std::string &path)
{
    std::ifstream probe(path);
    if (!probe)
        return Status::invalidArgument(
            detail::format("cannot read %s", path.c_str()));
    std::string first;
    if (!nextLine(probe, &first))
        return Status::invalidArgument("empty stream (no header line)");
    Json header;
    Status st = parseLine(first, 1, &header);
    if (!st.ok())
        return st;
    const Json *tag = header.find("schema");
    std::string schema = tag && tag->type() == Json::Type::String
                             ? tag->asString()
                             : "";
    std::ifstream in(path); // validators consume from the header on
    if (schema == "bw.routestream/1")
        return validateRouteStreamJson(in);
    if (schema == "bw.spanstream/1")
        return validateSpanStreamJson(in);
    if (schema == "bw.flightstream/1")
        return validateFlightStreamJson(in);
    return Status::invalidArgument(detail::format(
        "unknown stream schema tag '%s' (want bw.routestream/1, "
        "bw.spanstream/1 or bw.flightstream/1)",
        schema.c_str()));
}

} // namespace obs
} // namespace bw
