/**
 * @file
 * Tail-sampled flight recorder: full span evidence for exactly the
 * requests head sampling misses.
 *
 * Head sampling (obs/span.h, BW_SPAN_SAMPLE) keeps 1-in-N requests —
 * the right selector for steady-state overhead, the wrong one for tail
 * debugging. The p99 outlier, the deadline-expired request, and the
 * QUEUE_FULL reject are precisely the requests a 1-in-1000 head sample
 * is overwhelmingly likely to drop. The paper's whole argument lives in
 * that tail (batch-1 serving to hold p99 under hard SLOs, Fig. 8), so
 * the flight recorder inverts the selection:
 *
 *   1. Record *every* request's flight record — admission, dequeue,
 *      service, completion boundaries plus outcome class — into a
 *      bounded per-thread ring (wait-free, cache-line-padded shards,
 *      the SpanTracer discipline). Recording never blocks a worker and
 *      never perturbs simulated cycle counts.
 *   2. *Tail-promote* to durable export only the anomalous records:
 *      every non-Ok outcome (deadline-expired, rejected, errored,
 *      cancelled) plus the slowest-K per virtual-time window of the Ok
 *      ones. Promotion is a pure function of the deterministic
 *      submission sequence numbers and virtual-time stamps, so
 *      Engine::replay() exports byte-identical flight logs.
 *   3. The export (schema bw.flight/1) embeds a full bw.spans/1 span
 *      tree per promoted record — request / queue_wait / dispatch /
 *      execute, with chain[i] leaves reconstructed from the engine's
 *      cached retired-chain profiles — so a request that head sampling
 *      dropped still has complete span evidence after the fact.
 */

#ifndef BW_OBS_FLIGHT_H
#define BW_OBS_FLIGHT_H

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace bw {
namespace obs {

/** Anomaly class of one recorded request (why it may be promoted). */
enum class FlightClass : uint8_t
{
    Ok = 0,          //!< served successfully (promoted only if slow)
    DeadlineExpired, //!< waited out its deadline in the queue
    Rejected,        //!< refused admission (QUEUE_FULL)
    Error,           //!< served, but service reported an error
    Cancelled,       //!< abandoned by shutdown()
    NumFlightClasses
};

const char *flightClassName(FlightClass c);

/** SpanOutcome rendered on the record's reconstructed span tree. */
SpanOutcome flightClassOutcome(FlightClass c);

/**
 * One request's flight record: POD-sized so the hot path writes it into
 * a preallocated ring slot without allocating. Timestamps are
 * microseconds on the owning engine's clock (virtual time under
 * replay(), wall time under the threaded engine).
 */
struct FlightRecord
{
    /** Deterministic submission sequence number, 1-based over *all*
     *  submission attempts — rejected submissions consume one too (the
     *  promotion key must exist for requests that never got an id). */
    uint64_t seq = 0;
    /** Admitted request id (the span-tracing trace id namespace);
     *  0 for submissions rejected before admission. */
    uint64_t id = 0;
    FlightClass cls = FlightClass::Ok;
    /** Whether the head-sampling span tracer also kept this request
     *  (links the flight export to the bw.spans/1 export). */
    bool sampled = false;
    uint32_t replica = 0;
    uint32_t steps = 0;
    uint64_t admitUs = 0;
    uint64_t dequeueUs = 0; //!< == admitUs for rejected submissions
    uint64_t serviceUs = 0; //!< service start (== dequeueUs if none)
    uint64_t doneUs = 0;
    /** End-to-end latency in microseconds as the engine reported it
     *  (includes configured network time); the slowest-K ranking key. */
    uint64_t latencyUs = 0;
};

/** FlightRecorder configuration. */
struct FlightRecorderOptions
{
    /** Ring capacity per shard (per recording thread slot); the oldest
     *  records of a shard are overwritten once its ring is full. */
    size_t shardCapacity = 1u << 12;

    /** Virtual-time window for slowest-K promotion, microseconds.
     *  Window index is admitUs / windowUs — a pure function of the
     *  record, so replays promote identically. */
    uint64_t windowUs = 1000000;

    /** Ok records promoted per window (the slowest K by latency;
     *  ties broken by ascending sequence number). 0 promotes only
     *  anomalous records. */
    unsigned slowestK = 4;

    /** Apply BW_FLIGHT_WINDOW_MS (windowUs), BW_FLIGHT_SLOWEST_K
     *  (slowestK) and BW_FLIGHT_RING (shardCapacity) on @p base. */
    static FlightRecorderOptions fromEnv(FlightRecorderOptions base);
    static FlightRecorderOptions fromEnv();
};

/**
 * Wait-free flight recorder. record() claims a slot in the calling
 * thread's ring shard with one relaxed fetch_add and writes the POD
 * record in place — no locks, no allocation. collect()/promoted() merge
 * the shards; call them only after producers have quiesced (engine
 * drained or shut down), the same read discipline as SpanTracer.
 */
class FlightRecorder
{
  public:
    explicit FlightRecorder(FlightRecorderOptions opts = {});

    const FlightRecorderOptions &options() const { return opts_; }

    /** Record one request's flight record (wait-free). */
    void record(const FlightRecord &r);

    /** Merged records, sorted by seq. Safe after quiescence. */
    std::vector<FlightRecord> collect() const;

    /** The tail-promoted subset: promote(collect(), options()). */
    std::vector<FlightRecord> promoted() const;

    /** Total records offered to record() (including overwritten). */
    uint64_t recorded() const;
    /** Records lost to ring overwrite. */
    uint64_t dropped() const;

    /** Drop all records (e.g. between a live run and a deterministic
     *  replay sharing one recorder). */
    void clear();

  private:
    static constexpr size_t kShards = 16;

    struct alignas(64) Shard
    {
        std::vector<FlightRecord> ring;
        std::atomic<uint64_t> count{0};
    };

    FlightRecorderOptions opts_;
    std::array<Shard, kShards> shards_;
};

/**
 * The tail-promotion rule, as a pure function: every record whose class
 * is not Ok, plus the slowest @p opts.slowestK Ok records per
 * @p opts.windowUs virtual-time window (window = admitUs / windowUs;
 * within a window ranked by latencyUs descending, then seq ascending).
 * Input may be in any order; output ascends by seq. Deterministic
 * input produces deterministic output — no clocks, no randomness.
 */
std::vector<FlightRecord> promoteFlightRecords(
    std::vector<FlightRecord> records, const FlightRecorderOptions &opts);

/**
 * Supplies retired-chain profiles for a promoted record's span tree:
 * given the record's step count, returns the profiles and total cycles,
 * or false when none are available (model-less engines, rejected
 * requests). The serving engine binds this to its per-step-count
 * timing-profile cache.
 */
using ChainProfileFn = std::function<bool(
    uint32_t steps, const std::vector<ChainProfile> **chains,
    Cycles *total_cycles)>;

/**
 * Flight-log export, schema bw.flight/1:
 *
 *   {schema: "bw.flight/1", window_us, slowest_k, recorded, dropped,
 *    promoted: [{seq, id, class, sampled, replica, steps, admit_us,
 *                dequeue_us, service_us, done_us, latency_us}],
 *    spans: <bw.spans/1 document>}
 *
 * The embedded spans document holds one full span tree per promoted
 * record, keyed by the record's sequence number as the trace id:
 * request / queue_wait for never-served outcomes, plus dispatch /
 * execute / chain[i] leaves (via @p chains_for) for served ones.
 * Deterministic for deterministic input.
 */
Json flightJson(const std::vector<FlightRecord> &promoted,
                const FlightRecorderOptions &opts, uint64_t recorded,
                uint64_t dropped, const ChainProfileFn &chains_for = {});

/** flightJson(recorder.promoted(), recorder.options(), ...). */
Json flightJson(const FlightRecorder &recorder,
                const ChainProfileFn &chains_for = {});

/**
 * Validate a flightJson() document: schema tag, required integer
 * members, known class names, records ascending by seq, timestamps
 * ordered (admit <= dequeue <= service <= done), the embedded spans
 * document valid under validateSpanTreeJson with exactly one trace per
 * promoted record (trace id == seq). Returns OK or InvalidArgument
 * naming the first violation.
 */
Status validateFlightJson(const Json &doc);

} // namespace obs
} // namespace bw

#endif // BW_OBS_FLIGHT_H
