#include "obs/flight.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <unordered_set>

#include "common/logging.h"

namespace bw {
namespace obs {

namespace {

/** Stable per-thread shard index (modulo taken at use). */
size_t
threadSlot()
{
    static std::atomic<size_t> next{0};
    thread_local const size_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

constexpr const char *kSchema = "bw.flight/1";

} // namespace

const char *
flightClassName(FlightClass c)
{
    switch (c) {
      case FlightClass::Ok: return "ok";
      case FlightClass::DeadlineExpired: return "deadline_expired";
      case FlightClass::Rejected: return "rejected";
      case FlightClass::Error: return "error";
      case FlightClass::Cancelled: return "cancelled";
      default: BW_PANIC("bad FlightClass %d", static_cast<int>(c));
    }
}

SpanOutcome
flightClassOutcome(FlightClass c)
{
    switch (c) {
      case FlightClass::Ok: return SpanOutcome::Ok;
      case FlightClass::DeadlineExpired:
        return SpanOutcome::DeadlineExpired;
      case FlightClass::Rejected: return SpanOutcome::Rejected;
      case FlightClass::Error: return SpanOutcome::Error;
      case FlightClass::Cancelled: return SpanOutcome::Cancelled;
      default: BW_PANIC("bad FlightClass %d", static_cast<int>(c));
    }
}

FlightRecorderOptions
FlightRecorderOptions::fromEnv(FlightRecorderOptions base)
{
    if (const char *v = std::getenv("BW_FLIGHT_WINDOW_MS")) {
        double ms = std::atof(v);
        if (ms > 0)
            base.windowUs = static_cast<uint64_t>(ms * 1e3);
    }
    if (const char *v = std::getenv("BW_FLIGHT_SLOWEST_K")) {
        if (*v)
            base.slowestK = static_cast<unsigned>(std::atoi(v));
    }
    if (const char *v = std::getenv("BW_FLIGHT_RING")) {
        long n = std::atol(v);
        if (n > 0)
            base.shardCapacity = static_cast<size_t>(n);
    }
    return base;
}

FlightRecorderOptions
FlightRecorderOptions::fromEnv()
{
    return fromEnv(FlightRecorderOptions{});
}

// --- FlightRecorder ---

FlightRecorder::FlightRecorder(FlightRecorderOptions opts) : opts_(opts)
{
    opts_.shardCapacity = std::max<size_t>(1, opts_.shardCapacity);
    opts_.windowUs = std::max<uint64_t>(1, opts_.windowUs);
    for (Shard &s : shards_)
        s.ring.resize(opts_.shardCapacity);
}

void
FlightRecorder::record(const FlightRecord &r)
{
    Shard &sh = shards_[threadSlot() % kShards];
    uint64_t n = sh.count.fetch_add(1, std::memory_order_relaxed);
    sh.ring[n % sh.ring.size()] = r;
    // Publish: collect() loads with acquire after quiescence, so the
    // record write above is visible once the count is.
    std::atomic_thread_fence(std::memory_order_release);
}

std::vector<FlightRecord>
FlightRecorder::collect() const
{
    std::atomic_thread_fence(std::memory_order_acquire);
    std::vector<FlightRecord> out;
    for (const Shard &sh : shards_) {
        uint64_t n = sh.count.load(std::memory_order_acquire);
        size_t kept = static_cast<size_t>(
            std::min<uint64_t>(n, sh.ring.size()));
        for (size_t i = 0; i < kept; ++i)
            out.push_back(sh.ring[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const FlightRecord &a, const FlightRecord &b) {
                  return a.seq < b.seq;
              });
    return out;
}

std::vector<FlightRecord>
FlightRecorder::promoted() const
{
    return promoteFlightRecords(collect(), opts_);
}

uint64_t
FlightRecorder::recorded() const
{
    uint64_t n = 0;
    for (const Shard &sh : shards_)
        n += sh.count.load(std::memory_order_relaxed);
    return n;
}

uint64_t
FlightRecorder::dropped() const
{
    uint64_t d = 0;
    for (const Shard &sh : shards_) {
        uint64_t n = sh.count.load(std::memory_order_relaxed);
        if (n > sh.ring.size())
            d += n - sh.ring.size();
    }
    return d;
}

void
FlightRecorder::clear()
{
    for (Shard &sh : shards_)
        sh.count.store(0, std::memory_order_relaxed);
}

// --- Tail promotion ---

std::vector<FlightRecord>
promoteFlightRecords(std::vector<FlightRecord> records,
                     const FlightRecorderOptions &opts)
{
    std::sort(records.begin(), records.end(),
              [](const FlightRecord &a, const FlightRecord &b) {
                  return a.seq < b.seq;
              });

    std::vector<FlightRecord> out;
    uint64_t window_us = std::max<uint64_t>(1, opts.windowUs);

    // Ok records grouped by virtual-time window; each window keeps its
    // slowest K (latency descending, seq ascending on ties).
    std::vector<size_t> ok_indices;
    for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].cls != FlightClass::Ok)
            out.push_back(records[i]); // every anomaly is promoted
        else
            ok_indices.push_back(i);
    }
    size_t w = 0;
    while (w < ok_indices.size() && opts.slowestK > 0) {
        uint64_t window = records[ok_indices[w]].admitUs / window_us;
        size_t e = w;
        while (e < ok_indices.size() &&
               records[ok_indices[e]].admitUs / window_us == window)
            ++e;
        std::vector<size_t> in_window(ok_indices.begin() + w,
                                      ok_indices.begin() + e);
        std::sort(in_window.begin(), in_window.end(),
                  [&](size_t a, size_t b) {
                      if (records[a].latencyUs != records[b].latencyUs)
                          return records[a].latencyUs >
                                 records[b].latencyUs;
                      return records[a].seq < records[b].seq;
                  });
        size_t keep = std::min<size_t>(in_window.size(), opts.slowestK);
        for (size_t i = 0; i < keep; ++i)
            out.push_back(records[in_window[i]]);
        w = e;
    }

    std::sort(out.begin(), out.end(),
              [](const FlightRecord &a, const FlightRecord &b) {
                  return a.seq < b.seq;
              });
    return out;
}

// --- Export ---

Json
flightJson(const std::vector<FlightRecord> &promoted,
           const FlightRecorderOptions &opts, uint64_t recorded,
           uint64_t dropped, const ChainProfileFn &chains_for)
{
    Json doc = Json::object();
    doc.set("schema", kSchema);
    doc.set("window_us", opts.windowUs);
    doc.set("slowest_k", opts.slowestK);
    doc.set("recorded", recorded);
    doc.set("dropped", dropped);

    Json list = Json::array();
    for (const FlightRecord &r : promoted) {
        Json e = Json::object();
        e.set("seq", r.seq);
        e.set("id", r.id);
        e.set("class", flightClassName(r.cls));
        e.set("sampled", r.sampled);
        e.set("replica", r.replica);
        e.set("steps", r.steps);
        e.set("admit_us", r.admitUs);
        e.set("dequeue_us", r.dequeueUs);
        e.set("service_us", r.serviceUs);
        e.set("done_us", r.doneUs);
        e.set("latency_us", r.latencyUs);
        list.push(std::move(e));
    }
    doc.set("promoted", std::move(list));

    // Reconstruct one full span tree per promoted record (trace id =
    // submission seq) and embed it as a bw.spans/1 document — the span
    // evidence head sampling would have dropped. A scratch tracer sized
    // for the worst case keeps the recording path shared with the live
    // span exports.
    SpanTracerOptions sopts;
    sopts.shardCapacity =
        std::max<size_t>(1, promoted.size() * (4 + sopts.maxChainSpans));
    SpanTracer scratch(sopts);
    for (const FlightRecord &r : promoted) {
        RequestSpans rs;
        rs.trace = r.seq;
        rs.admitUs = r.admitUs;
        rs.dequeueUs = r.dequeueUs;
        rs.serviceUs = r.serviceUs;
        rs.doneUs = r.doneUs;
        rs.replica = r.replica;
        rs.outcome = flightClassOutcome(r.cls);
        const std::vector<ChainProfile> *chains = nullptr;
        Cycles total = 0;
        bool served = r.cls == FlightClass::Ok ||
                      r.cls == FlightClass::Error;
        if (served && chains_for &&
            chains_for(r.steps, &chains, &total) && chains) {
            rs.chainCount = static_cast<uint32_t>(chains->size());
        }
        SpanId exec = recordRequestTree(scratch, rs);
        if (exec != 0 && chains && !chains->empty()) {
            recordChainSpans(scratch, rs.trace, exec, r.serviceUs,
                             r.doneUs, *chains, total);
        }
    }
    doc.set("spans", spanTreeJson(scratch.collect(), 0));
    return doc;
}

Json
flightJson(const FlightRecorder &recorder, const ChainProfileFn &chains_for)
{
    return flightJson(recorder.promoted(), recorder.options(),
                      recorder.recorded(), recorder.dropped(),
                      chains_for);
}

// --- Validation ---

namespace {

Status
failFlight(const std::string &why)
{
    return Status::invalidArgument("flight document: " + why);
}

const char *const kClassNames[] = {"ok", "deadline_expired", "rejected",
                                   "error", "cancelled"};

bool
knownClass(const std::string &s)
{
    for (const char *k : kClassNames) {
        if (s == k)
            return true;
    }
    return false;
}

/** Fetch a non-negative integer member or fail. */
Status
intMember(const Json &obj, const char *key, int64_t *out)
{
    const Json *v = obj.find(key);
    if (!v || v->type() != Json::Type::Int || v->asInt() < 0)
        return failFlight(std::string("record missing non-negative "
                                      "integer '") + key + "'");
    *out = v->asInt();
    return Status();
}

} // namespace

Status
validateFlightJson(const Json &doc)
{
    if (doc.type() != Json::Type::Object)
        return failFlight("not an object");
    const Json *schema = doc.find("schema");
    if (!schema || schema->type() != Json::Type::String ||
        schema->asString() != kSchema) {
        return failFlight(std::string("schema is not '") + kSchema + "'");
    }
    for (const char *key : {"window_us", "recorded", "dropped"}) {
        const Json *v = doc.find(key);
        if (!v || v->type() != Json::Type::Int || v->asInt() < 0)
            return failFlight(std::string("missing non-negative "
                                          "integer '") + key + "'");
    }
    const Json *promoted = doc.find("promoted");
    if (!promoted || promoted->type() != Json::Type::Array)
        return failFlight("missing promoted array");

    std::set<int64_t> seqs;
    int64_t prev_seq = 0;
    for (size_t i = 0; i < promoted->size(); ++i) {
        const Json &r = promoted->at(i);
        if (r.type() != Json::Type::Object)
            return failFlight("promoted entry is not an object");
        int64_t seq = 0, admit = 0, dequeue = 0, service = 0, done = 0;
        Status st;
        if (!(st = intMember(r, "seq", &seq)).ok())
            return st;
        if (seq <= prev_seq)
            return failFlight("promoted seqs not strictly ascending");
        prev_seq = seq;
        seqs.insert(seq);
        const Json *cls = r.find("class");
        if (!cls || cls->type() != Json::Type::String ||
            !knownClass(cls->asString()))
            return failFlight("record missing known class name");
        if (!(st = intMember(r, "admit_us", &admit)).ok())
            return st;
        if (!(st = intMember(r, "dequeue_us", &dequeue)).ok())
            return st;
        if (!(st = intMember(r, "service_us", &service)).ok())
            return st;
        if (!(st = intMember(r, "done_us", &done)).ok())
            return st;
        if (admit > dequeue || dequeue > service || service > done)
            return failFlight(detail::format(
                "record seq %lld timestamps out of order",
                static_cast<long long>(seq)));
        int64_t ignored;
        if (!(st = intMember(r, "latency_us", &ignored)).ok())
            return st;
    }

    const Json *spans = doc.find("spans");
    if (!spans)
        return failFlight("missing embedded spans document");
    Status st = validateSpanTreeJson(*spans);
    if (!st.ok())
        return st;
    const Json *traces = spans->find("traces");
    std::set<int64_t> span_traces;
    for (size_t i = 0; i < traces->size(); ++i)
        span_traces.insert(traces->at(i).find("trace")->asInt());
    if (span_traces != seqs)
        return failFlight("span-tree traces do not match promoted "
                          "record seqs one-for-one");
    return Status();
}

} // namespace obs
} // namespace bw
