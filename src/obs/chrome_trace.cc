#include "obs/chrome_trace.h"

#include <map>

#include "common/logging.h"

namespace bw {
namespace obs {

namespace {

/** Stable per-instance track id: class-major so the waterfall groups
 *  all instances of one resource class together. */
int
trackId(const TraceEvent &e)
{
    return static_cast<int>(e.res) * 1000 + e.resIndex;
}

std::string
trackName(const TraceEvent &e)
{
    std::string n = resClassName(e.res);
    switch (e.res) {
      case ResClass::ControlProcessor:
      case ResClass::TopScheduler:
      case ResClass::Dram:
        return n; // single-instance tracks
      case ResClass::Network:
        return n + (e.resIndex == 0 ? ".in" : ".out");
      case ResClass::VrfPort:
        return n + "." + memIdMnemonic(e.mem) + "[" +
               std::to_string(e.resIndex) + "]";
      default:
        return n + "[" + std::to_string(e.resIndex) + "]";
    }
}

} // namespace

Json
chromeTraceJson(const EventTrace &trace, double clock_mhz)
{
    // cycles -> microseconds (or identity when no clock is given).
    double scale = clock_mhz > 0 ? 1.0 / clock_mhz : 1.0;

    Json events = Json::array();
    std::map<int, std::string> tracks;
    for (const TraceEvent &e : trace.events()) {
        int tid = trackId(e);
        tracks.emplace(tid, trackName(e));

        Json args = Json::object();
        args.set("chain", e.chain);
        args.set("start_cycle", e.start);
        args.set("end_cycle", e.end);
        if (e.kind == EventKind::VrfRead || e.kind == EventKind::VrfWrite) {
            args.set("mem", memIdMnemonic(e.mem));
            args.set("addr", e.addr);
        }

        Json ev = Json::object();
        ev.set("name", eventKindName(e.kind));
        ev.set("cat", resClassName(e.res));
        ev.set("ph", "X");
        ev.set("ts", static_cast<double>(e.start) * scale);
        ev.set("dur",
               static_cast<double>(e.end > e.start ? e.end - e.start : 0) *
                   scale);
        ev.set("pid", 0);
        ev.set("tid", tid);
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }

    // Metadata: name and order the tracks.
    for (const auto &[tid, name] : tracks) {
        Json nm_args = Json::object();
        nm_args.set("name", name);
        Json nm = Json::object();
        nm.set("name", "thread_name");
        nm.set("ph", "M");
        nm.set("pid", 0);
        nm.set("tid", tid);
        nm.set("args", std::move(nm_args));
        events.push(std::move(nm));

        Json idx_args = Json::object();
        idx_args.set("sort_index", tid);
        Json idx = Json::object();
        idx.set("name", "thread_sort_index");
        idx.set("ph", "M");
        idx.set("pid", 0);
        idx.set("tid", tid);
        idx.set("args", std::move(idx_args));
        events.push(std::move(idx));
    }

    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    Json meta = Json::object();
    meta.set("tool", "bw_trace");
    meta.set("clock_mhz", clock_mhz);
    meta.set("events_emitted", trace.emitted());
    meta.set("events_dropped", trace.dropped());
    doc.set("otherData", std::move(meta));
    return doc;
}

void
writeChromeTrace(const std::string &path, const EventTrace &trace,
                 double clock_mhz)
{
    writeJsonFile(path, chromeTraceJson(trace, clock_mhz));
}

} // namespace obs
} // namespace bw
