/**
 * @file
 * Chrome trace-event JSON export of an EventTrace: one track (tid) per
 * resource instance, so any simulator run opens in Perfetto or
 * chrome://tracing as a pipeline waterfall — control processor and
 * scheduler at the top, then tile engines, reduce units, MFUs, VRF
 * ports, network queues and DRAM.
 */

#ifndef BW_OBS_CHROME_TRACE_H
#define BW_OBS_CHROME_TRACE_H

#include <string>

#include "common/json.h"
#include "obs/trace.h"

namespace bw {
namespace obs {

/**
 * Render @p trace as a Chrome trace-event document. Timestamps are in
 * microseconds at @p clock_mhz; pass 0 to keep raw cycles (the
 * waterfall then reads in cycle units).
 */
Json chromeTraceJson(const EventTrace &trace, double clock_mhz);

/** chromeTraceJson() written to @p path; throws bw::Error on I/O. */
void writeChromeTrace(const std::string &path, const EventTrace &trace,
                      double clock_mhz);

} // namespace obs
} // namespace bw

#endif // BW_OBS_CHROME_TRACE_H
