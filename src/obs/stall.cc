#include "obs/stall.h"

#include <algorithm>
#include <map>

#include "common/table.h"

namespace bw {
namespace obs {

namespace {

/** Per-chain components, in the fixed attribution order. The last
 *  entry (compute) absorbs the integer remainder so the allocation is
 *  exact. */
struct Components
{
    std::string key[6];
    Cycles weight[6] = {0, 0, 0, 0, 0, 0};
};

Components
chainComponents(const ChainProfile &p)
{
    Components c;
    c.key[0] = "dispatch";
    c.weight[0] = p.dispatchDone > p.dispatchStart
                      ? p.dispatchDone - p.dispatchStart
                      : 0;
    c.key[1] = "decode";
    c.weight[1] =
        p.decodeDone > p.dispatchDone ? p.decodeDone - p.dispatchDone : 0;
    c.key[2] = std::string("data_hazard:") + memIdMnemonic(p.dataStallMem);
    c.weight[2] = p.dataStall;
    c.key[3] = "input_wait:netq";
    c.weight[3] = p.inputStall;
    c.key[4] = std::string("structural:") + resClassName(p.structRes);
    c.weight[4] = p.structStall;

    Cycles body = p.done > p.decodeDone ? p.done - p.decodeDone : 0;
    Cycles waits = p.dataStall + p.inputStall + p.structStall;
    c.key[5] = "compute";
    c.weight[5] = body > waits ? body - waits : 0;
    return c;
}

} // namespace

StallReport
buildStallReport(const std::vector<ChainProfile> &chains,
                 Cycles total_cycles)
{
    StallReport rep;
    rep.totalCycles = total_cycles;
    rep.chains = chains.size();

    std::vector<const ChainProfile *> order;
    order.reserve(chains.size());
    for (const ChainProfile &p : chains)
        order.push_back(&p);
    std::stable_sort(order.begin(), order.end(),
                     [](const ChainProfile *a, const ChainProfile *b) {
                         return a->done < b->done;
                     });

    std::map<std::string, Cycles> buckets;
    Cycles frontier = 0;
    for (const ChainProfile *p : order) {
        Cycles done = std::min(p->done, total_cycles);
        if (done <= frontier)
            continue;
        Cycles span = done - frontier;
        frontier = done;

        Components c = chainComponents(*p);
        Cycles w = 0;
        for (Cycles wi : c.weight)
            w += wi;
        if (w == 0) {
            buckets["compute"] += span;
            continue;
        }
        // Proportional integer split; compute (last) takes the
        // remainder so every span is attributed exactly.
        Cycles allocated = 0;
        for (int i = 0; i < 5; ++i) {
            Cycles a = span * c.weight[i] / w;
            if (a) {
                buckets[c.key[i]] += a;
                allocated += a;
            }
        }
        buckets[c.key[5]] += span - allocated;
    }
    if (frontier < total_cycles)
        buckets["idle"] += total_cycles - frontier;

    for (const auto &[reason, cycles] : buckets) {
        StallBucket b;
        b.reason = reason;
        b.cycles = cycles;
        b.fraction = total_cycles
                         ? static_cast<double>(cycles) / total_cycles
                         : 0.0;
        rep.attributedCycles += cycles;
        rep.buckets.push_back(std::move(b));
    }
    std::sort(rep.buckets.begin(), rep.buckets.end(),
              [](const StallBucket &a, const StallBucket &b) {
                  return a.cycles > b.cycles;
              });

    rep.worstChains.assign(chains.begin(), chains.end());
    std::stable_sort(rep.worstChains.begin(), rep.worstChains.end(),
                     [](const ChainProfile &a, const ChainProfile &b) {
                         return a.dataStall + a.inputStall + a.structStall >
                                b.dataStall + b.inputStall + b.structStall;
                     });
    return rep;
}

std::string
StallReport::render(size_t top_chains) const
{
    std::string out = "Stall attribution over " + fmtI(totalCycles) +
                      " cycles (" + fmtI(chains) + " chains retired)\n\n";

    TextTable t({"stall reason", "cycles", "share"});
    for (const StallBucket &b : buckets)
        t.addRow({b.reason, fmtI(b.cycles), fmtPct(b.fraction)});
    t.addRule();
    t.addRow({"attributed", fmtI(attributedCycles),
              fmtPct(totalCycles ? static_cast<double>(attributedCycles) /
                                       totalCycles
                                 : 0.0)});
    out += t.render();

    size_t n = std::min(top_chains, worstChains.size());
    if (n) {
        out += "\nWorst-stalled chains:\n";
        TextTable w({"chain", "head", "data", "input", "structural",
                     "worst cause"});
        for (size_t i = 0; i < n; ++i) {
            const ChainProfile &p = worstChains[i];
            std::string cause;
            if (p.worstDataStall >= p.worstStructStall &&
                p.worstDataStall > 0) {
                cause = std::string("RAW on ") +
                        memIdMnemonic(p.dataStallMem) + "[" +
                        std::to_string(p.dataStallAddr) + "]";
            } else if (p.worstStructStall > 0) {
                cause = std::string("busy ") + resClassName(p.structRes);
            } else if (p.inputStall > 0) {
                cause = "awaiting netq input";
            } else {
                cause = "-";
            }
            w.addRow({"@" + std::to_string(p.chain), p.label,
                      fmtI(p.dataStall), fmtI(p.inputStall),
                      fmtI(p.structStall), cause});
        }
        out += w.render();
    }
    return out;
}

Json
StallReport::toJson() const
{
    Json j = Json::object();
    j.set("total_cycles", totalCycles);
    j.set("attributed_cycles", attributedCycles);
    j.set("chains", chains);
    Json arr = Json::array();
    for (const StallBucket &b : buckets) {
        Json e = Json::object();
        e.set("reason", b.reason);
        e.set("cycles", b.cycles);
        e.set("fraction", b.fraction);
        arr.push(std::move(e));
    }
    j.set("buckets", std::move(arr));
    return j;
}

} // namespace obs
} // namespace bw
