/**
 * @file
 * Incident timelines: the failure-domain counterpart of the flight
 * recorder.
 *
 * The chaos plane (cluster/chaos.h) injects faults into the cluster in
 * virtual time; this layer records what the serving side did about each
 * one as an ordered phase timeline —
 *
 *   fault_injected -> detected -> evicted -> rewarm_started -> recovered
 *
 * — every stamp in microseconds of the replay clock, never a wall
 * clock. An incident is a pure function of (chaos seed, virtual time):
 * the fault fires at its scheduled instant, detection lags by the
 * configured health-check interval, eviction is immediate on detection,
 * and recovery lands when the fault window closes plus (for crashes)
 * the weight-cache re-warm charged through the DRAM reload model. Two
 * replays under one schedule therefore export byte-identical
 * bw.incident/1 documents — the same determinism contract as the
 * bw.route/1 and bw.flight/1 exports.
 *
 * Shards and fault classes are plain strings here, not cluster types:
 * the obs layer sits below bw_cluster and must not look upward.
 */

#ifndef BW_OBS_INCIDENT_H
#define BW_OBS_INCIDENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace bw {
namespace obs {

/** Lifecycle phases of one incident, in canonical order. Not every
 *  incident visits every phase: a slow-replica fault is never evicted
 *  (fault_injected -> recovered), and only crashes re-warm. */
enum class IncidentPhase : uint8_t
{
    FaultInjected = 0, //!< the chaos schedule fired the fault
    Detected,          //!< health checking noticed (fault + detect lag)
    Evicted,           //!< the router stopped placing work on the shard
    RewarmStarted,     //!< weight-cache reload began (crash only)
    Recovered,         //!< the shard rejoined the healthy set
    NumIncidentPhases
};

const char *incidentPhaseName(IncidentPhase p);

/** One phase stamp of an incident timeline. */
struct IncidentEvent
{
    IncidentPhase phase = IncidentPhase::FaultInjected;
    uint64_t tUs = 0; //!< virtual-time stamp, microseconds
};

/** One fault's full story: identity, phase timeline, blast radius. */
struct Incident
{
    uint64_t id = 0;     //!< 1-based, assigned by IncidentLog::open
    std::string cls;     //!< fault class name ("crash", "hang", ...)
    std::string shard;   //!< shard label ("s10/0")
    std::string group;   //!< replica-group name ("s10")
    uint64_t affected = 0;    //!< requests that hit the faulted shard
    uint64_t reloadTiles = 0; //!< weight tiles re-streamed on re-warm
    uint64_t reloadUs = 0;    //!< simulated re-warm DRAM time
    std::vector<IncidentEvent> events;

    /** Stamp of the first / last recorded phase (0 when empty). */
    uint64_t openedUs() const
    {
        return events.empty() ? 0 : events.front().tUs;
    }
    uint64_t closedUs() const
    {
        return events.empty() ? 0 : events.back().tUs;
    }
    /** Fault-to-terminal-phase gap: the MTTR numerator. */
    uint64_t mttrUs() const { return closedUs() - openedUs(); }
};

/**
 * Append-only incident journal. Not thread-safe: the cluster records
 * incidents from its single-threaded replay loop (live serving takes
 * the routing lock). clear() restarts it between replays so two
 * replays of one schedule export byte-identically.
 */
class IncidentLog
{
  public:
    /** Open a new incident at its fault_injected stamp; returns the
     *  1-based incident id. */
    uint64_t open(std::string cls, std::string shard, std::string group,
                  uint64_t t_us);

    /** Append a phase stamp to incident @p id. */
    void event(uint64_t id, IncidentPhase phase, uint64_t t_us);

    /** Count one request caught by incident @p id's fault window. */
    void addAffected(uint64_t id);

    /** Record the re-warm charge of incident @p id (crash faults). */
    void setReload(uint64_t id, uint64_t tiles, uint64_t us);

    const std::vector<Incident> &incidents() const { return log_; }
    size_t faults() const { return log_.size(); }

    /** Drop everything (between replays). */
    void clear() { log_.clear(); }

  private:
    Incident &at(uint64_t id);

    std::vector<Incident> log_;
};

/**
 * The log as a bw.incident/1 document: {schema, faults, incidents:
 * [{id, class, shard, group, affected, reload_tiles, reload_us,
 * mttr_us, events: [{phase, t_us}]}]}. Deterministic for a
 * deterministic log.
 */
Json incidentJson(const IncidentLog &log);

/**
 * Structural validator for a bw.incident/1 document: schema tag, every
 * incident's first phase is fault_injected, phase names are known,
 * stamps are monotonically non-decreasing, the terminal phase is
 * recovered or evicted (every fault is paired with a resolution), and
 * mttr_us equals the first-to-last stamp gap. Returns OK or
 * InvalidArgument naming the first violation.
 */
Status validateIncidentJson(const Json &doc);

} // namespace obs
} // namespace bw

#endif // BW_OBS_INCIDENT_H
