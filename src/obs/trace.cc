#include "obs/trace.h"

#include <algorithm>

#include "common/logging.h"

namespace bw {
namespace obs {

const char *
resClassName(ResClass r)
{
    switch (r) {
      case ResClass::ControlProcessor: return "control_processor";
      case ResClass::TopScheduler: return "top_scheduler";
      case ResClass::TileEngine: return "tile_engine";
      case ResClass::ReduceUnit: return "reduce_unit";
      case ResClass::MfuUnit: return "mfu_unit";
      case ResClass::VrfPort: return "vrf_port";
      case ResClass::Network: return "network";
      case ResClass::Dram: return "dram";
      case ResClass::ServeQueue: return "serve_queue";
      case ResClass::ServeWorker: return "serve_worker";
      default: BW_PANIC("bad ResClass %d", static_cast<int>(r));
    }
}

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Dispatch: return "dispatch";
      case EventKind::Decode: return "decode";
      case EventKind::TileStream: return "tile_stream";
      case EventKind::Reduce: return "reduce";
      case EventKind::MfuOp: return "mfu_op";
      case EventKind::VrfRead: return "vrf_read";
      case EventKind::VrfWrite: return "vrf_write";
      case EventKind::NetIn: return "net_in";
      case EventKind::NetOut: return "net_out";
      case EventKind::DramRead: return "dram_read";
      case EventKind::DramWrite: return "dram_write";
      case EventKind::QueueWait: return "queue_wait";
      case EventKind::Service: return "service";
      default: BW_PANIC("bad EventKind %d", static_cast<int>(k));
    }
}

EventTrace::EventTrace(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity))
{
    ring_.reserve(std::min<size_t>(capacity_, 4096));
}

void
EventTrace::event(const TraceEvent &e)
{
    ++emitted_;
    if (ring_.size() < capacity_) {
        ring_.push_back(e);
        return;
    }
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
}

void
EventTrace::chainRetired(const ChainProfile &p)
{
    chains_.push_back(p);
}

std::vector<TraceEvent>
EventTrace::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    // head_ is the oldest entry once the ring has wrapped.
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

void
EventTrace::clear()
{
    ring_.clear();
    chains_.clear();
    head_ = 0;
    emitted_ = 0;
}

void
TextTraceSink::event(const TraceEvent &e)
{
    if (!verbose_)
        return;
    std::fprintf(out_, "trace event %-12s %s[%u] chain@%u [%llu,%llu)\n",
                 eventKindName(e.kind), resClassName(e.res), e.resIndex,
                 e.chain, static_cast<unsigned long long>(e.start),
                 static_cast<unsigned long long>(e.end));
}

void
TextTraceSink::chainRetired(const ChainProfile &p)
{
    std::fprintf(out_,
                 "trace chain@%u %-28s dispatch=%llu decode=%llu "
                 "done=%llu data_stall=%llu input_stall=%llu "
                 "struct_stall=%llu\n",
                 p.chain, p.label.c_str(),
                 static_cast<unsigned long long>(p.dispatchDone),
                 static_cast<unsigned long long>(p.decodeDone),
                 static_cast<unsigned long long>(p.done),
                 static_cast<unsigned long long>(p.dataStall),
                 static_cast<unsigned long long>(p.inputStall),
                 static_cast<unsigned long long>(p.structStall));
}

} // namespace obs
} // namespace bw
