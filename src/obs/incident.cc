#include "obs/incident.h"

#include "common/logging.h"

namespace bw {
namespace obs {

namespace {

constexpr const char *kSchema = "bw.incident/1";

} // namespace

const char *
incidentPhaseName(IncidentPhase p)
{
    switch (p) {
      case IncidentPhase::FaultInjected: return "fault_injected";
      case IncidentPhase::Detected: return "detected";
      case IncidentPhase::Evicted: return "evicted";
      case IncidentPhase::RewarmStarted: return "rewarm_started";
      case IncidentPhase::Recovered: return "recovered";
      default: BW_PANIC("bad IncidentPhase %d", static_cast<int>(p));
    }
}

Incident &
IncidentLog::at(uint64_t id)
{
    BW_ASSERT(id >= 1 && id <= log_.size(), "incident id %llu out of range",
              static_cast<unsigned long long>(id));
    return log_[id - 1];
}

uint64_t
IncidentLog::open(std::string cls, std::string shard, std::string group,
                  uint64_t t_us)
{
    Incident inc;
    inc.id = log_.size() + 1;
    inc.cls = std::move(cls);
    inc.shard = std::move(shard);
    inc.group = std::move(group);
    inc.events.push_back({IncidentPhase::FaultInjected, t_us});
    log_.push_back(std::move(inc));
    return log_.back().id;
}

void
IncidentLog::event(uint64_t id, IncidentPhase phase, uint64_t t_us)
{
    Incident &inc = at(id);
    // Virtual time never runs backwards; clamp defensively so a
    // rounding quirk can never produce an invalid export.
    if (!inc.events.empty() && t_us < inc.events.back().tUs)
        t_us = inc.events.back().tUs;
    inc.events.push_back({phase, t_us});
}

void
IncidentLog::addAffected(uint64_t id)
{
    ++at(id).affected;
}

void
IncidentLog::setReload(uint64_t id, uint64_t tiles, uint64_t us)
{
    Incident &inc = at(id);
    inc.reloadTiles = tiles;
    inc.reloadUs = us;
}

Json
incidentJson(const IncidentLog &log)
{
    Json doc = Json::object();
    doc.set("schema", kSchema);
    doc.set("faults", static_cast<uint64_t>(log.faults()));
    Json arr = Json::array();
    for (const Incident &inc : log.incidents()) {
        Json j = Json::object();
        j.set("id", inc.id);
        j.set("class", inc.cls);
        j.set("shard", inc.shard);
        j.set("group", inc.group);
        j.set("affected", inc.affected);
        j.set("reload_tiles", inc.reloadTiles);
        j.set("reload_us", inc.reloadUs);
        j.set("mttr_us", inc.mttrUs());
        Json evs = Json::array();
        for (const IncidentEvent &e : inc.events) {
            Json ej = Json::object();
            ej.set("phase", incidentPhaseName(e.phase));
            ej.set("t_us", e.tUs);
            evs.push(std::move(ej));
        }
        j.set("events", std::move(evs));
        arr.push(std::move(j));
    }
    doc.set("incidents", std::move(arr));
    return doc;
}

namespace {

Status
failIncident(size_t idx, const std::string &why)
{
    return Status::invalidArgument(
        detail::format("incident %zu: %s", idx, why.c_str()));
}

bool
knownPhase(const std::string &name)
{
    for (int p = 0;
         p < static_cast<int>(IncidentPhase::NumIncidentPhases); ++p) {
        if (name == incidentPhaseName(static_cast<IncidentPhase>(p)))
            return true;
    }
    return false;
}

} // namespace

Status
validateIncidentJson(const Json &doc)
{
    if (doc.type() != Json::Type::Object)
        return Status::invalidArgument(
            "incident document is not an object");
    const Json *schema = doc.find("schema");
    if (!schema || schema->type() != Json::Type::String ||
        schema->asString() != kSchema) {
        return Status::invalidArgument(
            std::string("incident document schema is not '") + kSchema +
            "'");
    }
    const Json *faults = doc.find("faults");
    if (!faults || faults->type() != Json::Type::Int ||
        faults->asInt() < 0)
        return Status::invalidArgument(
            "incident document missing non-negative integer 'faults'");
    const Json *incidents = doc.find("incidents");
    if (!incidents || incidents->type() != Json::Type::Array)
        return Status::invalidArgument(
            "incident document has no incidents array");
    if (static_cast<uint64_t>(faults->asInt()) != incidents->size())
        return Status::invalidArgument(
            "'faults' does not match the incidents array length");
    for (size_t i = 0; i < incidents->size(); ++i) {
        const Json &inc = incidents->at(i);
        if (inc.type() != Json::Type::Object)
            return failIncident(i, "not an object");
        for (const char *key : {"class", "shard", "group"}) {
            const Json *v = inc.find(key);
            if (!v || v->type() != Json::Type::String ||
                v->asString().empty())
                return failIncident(
                    i, detail::format("missing string '%s'", key));
        }
        for (const char *key :
             {"id", "affected", "reload_tiles", "reload_us", "mttr_us"}) {
            const Json *v = inc.find(key);
            if (!v || v->type() != Json::Type::Int || v->asInt() < 0)
                return failIncident(
                    i, detail::format("missing non-negative integer '%s'",
                                      key));
        }
        const Json *events = inc.find("events");
        if (!events || events->type() != Json::Type::Array ||
            events->size() == 0)
            return failIncident(i, "missing non-empty events array");
        int64_t prev = -1;
        for (size_t e = 0; e < events->size(); ++e) {
            const Json &ev = events->at(e);
            if (ev.type() != Json::Type::Object)
                return failIncident(i, "event is not an object");
            const Json *phase = ev.find("phase");
            if (!phase || phase->type() != Json::Type::String ||
                !knownPhase(phase->asString()))
                return failIncident(
                    i, detail::format("event %zu has unknown phase", e));
            const Json *t = ev.find("t_us");
            if (!t || t->type() != Json::Type::Int || t->asInt() < 0)
                return failIncident(
                    i, detail::format(
                           "event %zu missing non-negative t_us", e));
            if (t->asInt() < prev)
                return failIncident(
                    i, detail::format(
                           "event %zu stamp runs backwards in virtual "
                           "time",
                           e));
            prev = t->asInt();
        }
        if (events->at(0).find("phase")->asString() != "fault_injected")
            return failIncident(i,
                                "first phase is not fault_injected");
        const std::string terminal =
            events->at(events->size() - 1).find("phase")->asString();
        if (terminal != "recovered" && terminal != "evicted")
            return failIncident(
                i, "terminal phase is not recovered or evicted (fault "
                   "left unresolved)");
        int64_t mttr = events->at(events->size() - 1).find("t_us")->asInt() -
                       events->at(0).find("t_us")->asInt();
        if (inc.find("mttr_us")->asInt() != mttr)
            return failIncident(
                i, "mttr_us does not equal the first-to-last stamp gap");
    }
    return Status();
}

} // namespace obs
} // namespace bw
