#include "obs/span.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace bw {
namespace obs {

namespace {

/** Stable per-thread shard index (modulo taken at use). */
size_t
threadSlot()
{
    static std::atomic<size_t> next{0};
    thread_local const size_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

constexpr const char *kSchema = "bw.spans/1";

} // namespace

const char *
spanKindName(SpanKind k)
{
    switch (k) {
      case SpanKind::Request: return "request";
      case SpanKind::QueueWait: return "queue_wait";
      case SpanKind::Dispatch: return "dispatch";
      case SpanKind::Execute: return "execute";
      case SpanKind::Chain: return "chain";
      case SpanKind::Route: return "route";
      case SpanKind::Hedge: return "hedge";
      default: BW_PANIC("bad SpanKind %d", static_cast<int>(k));
    }
}

const char *
spanOutcomeName(SpanOutcome o)
{
    switch (o) {
      case SpanOutcome::Ok: return "ok";
      case SpanOutcome::DeadlineExpired: return "deadline_expired";
      case SpanOutcome::Cancelled: return "cancelled";
      case SpanOutcome::Rejected: return "rejected";
      case SpanOutcome::Error: return "error";
      default: BW_PANIC("bad SpanOutcome %d", static_cast<int>(o));
    }
}

SpanTracerOptions
SpanTracerOptions::fromEnv(SpanTracerOptions base)
{
    if (const char *v = std::getenv("BW_SPAN_SAMPLE")) {
        if (*v)
            base.sampleEvery = static_cast<unsigned>(std::atoi(v));
    }
    return base;
}

SpanTracerOptions
SpanTracerOptions::fromEnv()
{
    return fromEnv(SpanTracerOptions{});
}

// --- SpanTracer ---

SpanTracer::SpanTracer(SpanTracerOptions opts) : opts_(opts)
{
    opts_.shardCapacity = std::max<size_t>(1, opts_.shardCapacity);
    for (Shard &s : shards_)
        s.ring.resize(opts_.shardCapacity);
}

TraceContext
SpanTracer::admit(uint64_t seq) const
{
    TraceContext ctx;
    if (opts_.sampleEvery > 0 && seq > 0 &&
        (seq - 1) % opts_.sampleEvery == 0) {
        ctx.trace = seq;
    }
    return ctx;
}

void
SpanTracer::record(const SpanRecord &s)
{
    Shard &sh = shards_[threadSlot() % kShards];
    uint64_t n = sh.count.fetch_add(1, std::memory_order_relaxed);
    sh.ring[n % sh.ring.size()] = s;
    // Publish: collect() loads with acquire after quiescence, so the
    // record write above is visible once the count is.
    std::atomic_thread_fence(std::memory_order_release);
}

std::vector<SpanRecord>
SpanTracer::collect() const
{
    std::atomic_thread_fence(std::memory_order_acquire);
    std::vector<SpanRecord> out;
    for (const Shard &sh : shards_) {
        uint64_t n = sh.count.load(std::memory_order_acquire);
        size_t kept = static_cast<size_t>(
            std::min<uint64_t>(n, sh.ring.size()));
        for (size_t i = 0; i < kept; ++i)
            out.push_back(sh.ring[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.trace != b.trace ? a.trace < b.trace
                                            : a.id < b.id;
              });
    return out;
}

uint64_t
SpanTracer::recorded() const
{
    uint64_t n = 0;
    for (const Shard &sh : shards_)
        n += sh.count.load(std::memory_order_relaxed);
    return n;
}

uint64_t
SpanTracer::dropped() const
{
    uint64_t d = 0;
    for (const Shard &sh : shards_) {
        uint64_t n = sh.count.load(std::memory_order_relaxed);
        if (n > sh.ring.size())
            d += n - sh.ring.size();
    }
    return d;
}

void
SpanTracer::clear()
{
    for (Shard &sh : shards_)
        sh.count.store(0, std::memory_order_relaxed);
}

// --- Canonical request tree ---

SpanId
recordRequestTree(SpanTracer &tracer, const RequestSpans &rs,
                  SpanId parent)
{
    if (rs.trace == 0)
        return 0;
    SpanRecord r;
    r.trace = rs.trace;
    r.id = parent + 1;
    r.parent = parent;
    r.kind = SpanKind::Request;
    r.outcome = rs.outcome;
    r.startUs = rs.admitUs;
    r.endUs = rs.doneUs;
    tracer.record(r);

    SpanRecord q;
    q.trace = rs.trace;
    q.id = parent + 2;
    q.parent = r.id;
    q.kind = SpanKind::QueueWait;
    q.startUs = rs.admitUs;
    q.endUs = rs.dequeueUs;
    tracer.record(q);

    // Errored requests consumed service; only never-served outcomes
    // (expired in queue, rejected, cancelled) stop at queue_wait.
    if (rs.outcome != SpanOutcome::Ok && rs.outcome != SpanOutcome::Error)
        return 0; // never reached service: queue_wait is the story

    SpanRecord d;
    d.trace = rs.trace;
    d.id = parent + 3;
    d.parent = r.id;
    d.kind = SpanKind::Dispatch;
    d.startUs = rs.dequeueUs;
    d.endUs = rs.serviceUs;
    tracer.record(d);

    SpanRecord e;
    e.trace = rs.trace;
    e.id = parent + 4;
    e.parent = r.id;
    e.kind = SpanKind::Execute;
    e.index = rs.replica;
    e.chainCount = rs.chainCount;
    e.startUs = rs.serviceUs;
    e.endUs = rs.doneUs;
    tracer.record(e);
    return e.id;
}

SpanId
recordRouteSpan(SpanTracer &tracer, const RouteSpan &rs)
{
    if (rs.trace == 0)
        return 0;
    SpanRecord r;
    r.trace = rs.trace;
    r.id = 1;
    r.parent = 0;
    r.kind = SpanKind::Route;
    r.outcome = rs.outcome;
    r.index = rs.engine;
    r.chainId = rs.model;
    r.startUs = rs.admitUs;
    r.endUs = rs.doneUs;
    tracer.record(r);
    return r.id;
}

void
recordChainSpans(SpanTracer &tracer, TraceId trace, SpanId execute,
                 uint64_t service_us, uint64_t done_us,
                 const std::vector<ChainProfile> &chains,
                 Cycles total_cycles)
{
    if (trace == 0 || execute == 0 || chains.empty())
        return;
    uint64_t window = done_us > service_us ? done_us - service_us : 0;
    auto map_cycle = [&](Cycles c) -> uint64_t {
        if (total_cycles == 0 || window == 0)
            return service_us;
        c = std::min(c, total_cycles);
        // 128-bit intermediate: cycles * window can pass 2^64, and the
        // deterministic-replay exports must not round differently per
        // platform, so no floating point here.
        return service_us +
               static_cast<uint64_t>(
                   static_cast<unsigned __int128>(c) * window /
                   total_cycles);
    };
    size_t take =
        std::min<size_t>(chains.size(), tracer.options().maxChainSpans);
    for (size_t i = 0; i < take; ++i) {
        const ChainProfile &p = chains[i];
        SpanRecord s;
        s.trace = trace;
        s.id = static_cast<SpanId>(execute + 1 + i);
        s.parent = execute;
        s.kind = SpanKind::Chain;
        s.chainKind = p.kind;
        s.index = static_cast<uint32_t>(i);
        s.chainId = p.chain;
        s.startCycle = p.dispatchStart;
        s.endCycle = p.done;
        s.startUs = map_cycle(p.dispatchStart);
        s.endUs = std::max(map_cycle(p.done), s.startUs);
        s.dispatchCycles = p.dispatchDone > p.dispatchStart
                               ? p.dispatchDone - p.dispatchStart
                               : 0;
        s.decodeCycles =
            p.decodeDone > p.dispatchDone ? p.decodeDone - p.dispatchDone
                                          : 0;
        s.dataStallCycles = p.dataStall;
        s.inputStallCycles = p.inputStall;
        s.structStallCycles = p.structStall;
        Cycles tail = p.done > p.decodeDone ? p.done - p.decodeDone : 0;
        Cycles stalls = p.dataStall + p.inputStall + p.structStall;
        s.computeCycles = tail > stalls ? tail - stalls : 0;
        tracer.record(s);
    }
}

// --- Span-tree JSON export ---

namespace {

std::string
spanName(const SpanRecord &s)
{
    if (s.kind == SpanKind::Chain)
        return "chain[" + std::to_string(s.index) + "]";
    if (s.kind == SpanKind::Hedge)
        return "hedge[" + std::to_string(s.index) + "]";
    return spanKindName(s.kind);
}

Json
spanNode(const SpanRecord &s, const std::vector<const SpanRecord *> &kids)
{
    Json n = Json::object();
    n.set("name", spanName(s));
    n.set("id", s.id);
    n.set("start_us", s.startUs);
    n.set("end_us", s.endUs);
    n.set("dur_us", s.endUs - s.startUs);
    switch (s.kind) {
      case SpanKind::Request:
        n.set("outcome", spanOutcomeName(s.outcome));
        break;
      case SpanKind::Route:
        n.set("outcome", spanOutcomeName(s.outcome));
        n.set("engine", s.index);
        n.set("model", s.chainId);
        break;
      case SpanKind::Hedge:
        n.set("outcome", spanOutcomeName(s.outcome));
        n.set("engine", s.chainId);
        break;
      case SpanKind::Execute:
        n.set("replica", s.index);
        if (s.chainCount > 0) {
            n.set("chains", s.chainCount);
            if (s.chainCount > kids.size())
                n.set("chains_truncated", true);
        }
        break;
      case SpanKind::Chain: {
        n.set("chain", s.chainId);
        n.set("kind", std::string(1, s.chainKind ? s.chainKind : '?'));
        n.set("start_cycle", s.startCycle);
        n.set("end_cycle", s.endCycle);
        Json st = Json::object();
        st.set("dispatch", s.dispatchCycles);
        st.set("decode", s.decodeCycles);
        st.set("data", s.dataStallCycles);
        st.set("input", s.inputStallCycles);
        st.set("struct", s.structStallCycles);
        st.set("compute", s.computeCycles);
        n.set("stalls", std::move(st));
        break;
      }
      default:
        break;
    }
    return n;
}

} // namespace

Json
spanTreeJson(const std::vector<SpanRecord> &spans, uint64_t dropped)
{
    // Group by trace (input is collect()-sorted or close; sort copies
    // of the indices to be safe with arbitrary callers).
    std::vector<const SpanRecord *> ordered;
    ordered.reserve(spans.size());
    for (const SpanRecord &s : spans)
        ordered.push_back(&s);
    std::sort(ordered.begin(), ordered.end(),
              [](const SpanRecord *a, const SpanRecord *b) {
                  return a->trace != b->trace ? a->trace < b->trace
                                              : a->id < b->id;
              });

    Json traces = Json::array();
    uint64_t exported = 0;
    uint64_t incomplete = 0;

    size_t i = 0;
    while (i < ordered.size()) {
        TraceId t = ordered[i]->trace;
        size_t j = i;
        while (j < ordered.size() && ordered[j]->trace == t)
            ++j;

        // Children by parent id; the root is the parentless request.
        std::unordered_map<SpanId, std::vector<const SpanRecord *>> kids;
        const SpanRecord *root = nullptr;
        std::unordered_map<SpanId, const SpanRecord *> by_id;
        for (size_t k = i; k < j; ++k) {
            const SpanRecord *s = ordered[k];
            by_id.emplace(s->id, s);
            if (s->parent == 0 && (s->kind == SpanKind::Request ||
                                   s->kind == SpanKind::Route))
                root = s;
        }
        bool lost_parent = false;
        for (size_t k = i; k < j; ++k) {
            const SpanRecord *s = ordered[k];
            if (s->parent == 0)
                continue;
            if (by_id.count(s->parent))
                kids[s->parent].push_back(s);
            else
                lost_parent = true; // ring overwrite ate the parent
        }
        i = j;
        if (!root) {
            ++incomplete;
            continue;
        }
        for (auto &[id, v] : kids) {
            (void)id;
            std::sort(v.begin(), v.end(),
                      [](const SpanRecord *a, const SpanRecord *b) {
                          return a->startUs != b->startUs
                                     ? a->startUs < b->startUs
                                     : a->id < b->id;
                      });
        }

        // Render the tree depth-first without recursion limits to worry
        // about: the tree is at most 3 deep by construction.
        struct Frame
        {
            const SpanRecord *span;
            Json node;
            size_t next = 0;
        };
        std::vector<Frame> stack;
        auto kids_of = [&](SpanId id) -> std::vector<const SpanRecord *> & {
            static std::vector<const SpanRecord *> none;
            auto it = kids.find(id);
            return it == kids.end() ? none : it->second;
        };
        stack.push_back({root, spanNode(*root, kids_of(root->id)), 0});
        ++exported;
        Json root_node;
        while (!stack.empty()) {
            Frame &f = stack.back();
            auto &children = kids_of(f.span->id);
            if (f.next < children.size()) {
                const SpanRecord *c = children[f.next++];
                stack.push_back({c, spanNode(*c, kids_of(c->id)), 0});
                ++exported;
                continue;
            }
            Json done = std::move(f.node);
            const SpanRecord *done_span = f.span;
            stack.pop_back();
            if (stack.empty()) {
                root_node = std::move(done);
                break;
            }
            (void)done_span;
            Json *parent_children = nullptr;
            // children array is added lazily on first completed child.
            Frame &pf = stack.back();
            if (!pf.node.contains("children"))
                pf.node.set("children", Json::array());
            // Re-set: copy out, push, set back (Json has no mutable
            // find; trees are small enough that this stays cheap).
            Json arr = *pf.node.find("children");
            arr.push(std::move(done));
            pf.node.set("children", std::move(arr));
            (void)parent_children;
        }

        Json tr = Json::object();
        tr.set("trace", t);
        if (lost_parent)
            tr.set("incomplete", true);
        tr.set("root", std::move(root_node));
        traces.push(std::move(tr));
    }

    Json doc = Json::object();
    doc.set("schema", kSchema);
    doc.set("spans", exported);
    doc.set("dropped", dropped);
    if (incomplete > 0)
        doc.set("incomplete_traces", incomplete);
    doc.set("traces", std::move(traces));
    return doc;
}

Json
spanTreeJson(const SpanTracer &tracer)
{
    return spanTreeJson(tracer.collect(), tracer.dropped());
}

// --- Schema validation ---

namespace {

Status
failSpan(TraceId trace, const std::string &why)
{
    return Status::invalidArgument(detail::format(
        "trace %llu: %s", static_cast<unsigned long long>(trace),
        why.c_str()));
}

Status
validateSpan(const Json &node, TraceId trace, bool is_root,
             const Json *parent,
             std::unordered_set<int64_t> &ids)
{
    if (node.type() != Json::Type::Object)
        return failSpan(trace, "span is not an object");
    const Json *name = node.find("name");
    if (!name || name->type() != Json::Type::String ||
        name->asString().empty())
        return failSpan(trace, "span missing name");
    if (is_root && name->asString() != "request" &&
        name->asString() != "route")
        return failSpan(trace,
                        "root span is not named 'request' or 'route'");
    const Json *id = node.find("id");
    if (!id || id->type() != Json::Type::Int || id->asInt() <= 0)
        return failSpan(trace, "span '" + name->asString() +
                                   "' missing positive integer id");
    if (!ids.insert(id->asInt()).second)
        return failSpan(trace, "duplicate span id " +
                                   std::to_string(id->asInt()));
    const Json *start = node.find("start_us");
    const Json *end = node.find("end_us");
    const Json *dur = node.find("dur_us");
    if (!start || start->type() != Json::Type::Int || !end ||
        end->type() != Json::Type::Int || !dur ||
        dur->type() != Json::Type::Int) {
        return failSpan(trace, "span '" + name->asString() +
                                   "' missing integer start_us/end_us/"
                                   "dur_us");
    }
    if (end->asInt() < start->asInt())
        return failSpan(trace,
                        "span '" + name->asString() + "' ends before it "
                        "starts");
    if (dur->asInt() != end->asInt() - start->asInt())
        return failSpan(trace, "span '" + name->asString() +
                                   "' dur_us != end_us - start_us");
    if (parent) {
        int64_t ps = parent->find("start_us")->asInt();
        int64_t pe = parent->find("end_us")->asInt();
        if (start->asInt() < ps || end->asInt() > pe)
            return failSpan(trace, "span '" + name->asString() +
                                       "' escapes its parent interval");
    }
    if (const Json *children = node.find("children")) {
        if (children->type() != Json::Type::Array)
            return failSpan(trace, "children is not an array");
        for (size_t i = 0; i < children->size(); ++i) {
            Status st = validateSpan(children->at(i), trace, false,
                                     &node, ids);
            if (!st.ok())
                return st;
        }
    }
    return Status();
}

} // namespace

Status
validateSpanTreeJson(const Json &doc)
{
    if (doc.type() != Json::Type::Object)
        return Status::invalidArgument("span document is not an object");
    const Json *schema = doc.find("schema");
    if (!schema || schema->type() != Json::Type::String ||
        schema->asString() != kSchema) {
        return Status::invalidArgument(
            std::string("span document schema is not '") + kSchema +
            "'");
    }
    const Json *traces = doc.find("traces");
    if (!traces || traces->type() != Json::Type::Array)
        return Status::invalidArgument(
            "span document has no traces array");
    for (size_t i = 0; i < traces->size(); ++i) {
        const Json &tr = traces->at(i);
        if (tr.type() != Json::Type::Object)
            return Status::invalidArgument("trace entry is not an object");
        const Json *tid = tr.find("trace");
        if (!tid || tid->type() != Json::Type::Int || tid->asInt() <= 0)
            return Status::invalidArgument(
                "trace entry missing positive integer trace id");
        const Json *root = tr.find("root");
        if (!root)
            return failSpan(static_cast<TraceId>(tid->asInt()),
                            "trace entry missing root span");
        std::unordered_set<int64_t> ids;
        Status st = validateSpan(*root,
                                 static_cast<TraceId>(tid->asInt()),
                                 true, nullptr, ids);
        if (!st.ok())
            return st;
    }
    return Status();
}

// --- Chrome async-event overlay ---

namespace {

/** Append one b/e async pair for a span interval. */
void
pushAsyncPair(Json &events, TraceId trace, const std::string &name,
              uint64_t start_us, uint64_t end_us, Json args)
{
    Json b = Json::object();
    b.set("name", name);
    b.set("cat", "bw.span");
    b.set("ph", "b");
    b.set("id", std::to_string(trace));
    b.set("ts", start_us);
    b.set("pid", 0);
    if (!args.isNull())
        b.set("args", std::move(args));
    events.push(std::move(b));

    Json e = Json::object();
    e.set("name", name);
    e.set("cat", "bw.span");
    e.set("ph", "e");
    e.set("id", std::to_string(trace));
    e.set("ts", end_us);
    e.set("pid", 0);
    events.push(std::move(e));
}

/** Splice @p extra onto chrome_doc.traceEvents (created when absent). */
void
spliceEvents(Json &chrome_doc, Json extra)
{
    Json events = Json::array();
    if (const Json *existing = chrome_doc.find("traceEvents"))
        events = *existing;
    for (size_t i = 0; i < extra.size(); ++i)
        events.push(extra.at(i));
    chrome_doc.set("traceEvents", std::move(events));
}

} // namespace

void
appendSpanEvents(Json &chrome_doc, const std::vector<SpanRecord> &spans)
{
    Json events = Json::array();
    for (const SpanRecord &s : spans) {
        Json args = Json::object();
        args.set("trace", s.trace);
        switch (s.kind) {
          case SpanKind::Request:
            args.set("outcome", spanOutcomeName(s.outcome));
            break;
          case SpanKind::Route:
            args.set("outcome", spanOutcomeName(s.outcome));
            args.set("engine", s.index);
            args.set("model", s.chainId);
            break;
          case SpanKind::Hedge:
            args.set("outcome", spanOutcomeName(s.outcome));
            args.set("engine", s.chainId);
            break;
          case SpanKind::Execute:
            args.set("replica", s.index);
            break;
          case SpanKind::Chain:
            args.set("chain", s.chainId);
            args.set("start_cycle", s.startCycle);
            args.set("end_cycle", s.endCycle);
            args.set("data_stall", s.dataStallCycles);
            args.set("input_stall", s.inputStallCycles);
            args.set("struct_stall", s.structStallCycles);
            args.set("compute", s.computeCycles);
            break;
          default:
            break;
        }
        pushAsyncPair(events, s.trace, spanName(s), s.startUs, s.endUs,
                      std::move(args));
    }
    spliceEvents(chrome_doc, std::move(events));
}

namespace {

void
appendDocSpan(Json &events, TraceId trace, const Json &node)
{
    Json args = Json::object();
    args.set("trace", trace);
    for (size_t i = 0; i < node.size(); ++i) {
        const auto &[key, value] = node.member(i);
        if (key == "name" || key == "children" || key == "start_us" ||
            key == "end_us" || key == "dur_us" || key == "id")
            continue;
        args.set(key, value);
    }
    pushAsyncPair(events, trace, node.find("name")->asString(),
                  static_cast<uint64_t>(node.find("start_us")->asInt()),
                  static_cast<uint64_t>(node.find("end_us")->asInt()),
                  std::move(args));
    if (const Json *children = node.find("children")) {
        for (size_t i = 0; i < children->size(); ++i)
            appendDocSpan(events, trace, children->at(i));
    }
}

} // namespace

Status
appendSpanTreeDocEvents(Json &chrome_doc, const Json &span_doc)
{
    Status st = validateSpanTreeJson(span_doc);
    if (!st.ok())
        return st;
    Json events = Json::array();
    const Json *traces = span_doc.find("traces");
    for (size_t i = 0; i < traces->size(); ++i) {
        const Json &tr = traces->at(i);
        appendDocSpan(events,
                      static_cast<TraceId>(tr.find("trace")->asInt()),
                      *tr.find("root"));
    }
    spliceEvents(chrome_doc, std::move(events));
    return Status();
}

} // namespace obs
} // namespace bw
