/**
 * @file
 * Structured event tracing for the timing simulator (the observability
 * layer the paper's Fig. 7 / UDM-SDM methodology implies).
 *
 * The timing model emits one TraceEvent per busy interval of a modeled
 * resource (control-processor dispatch slots, scheduler decode, MVM tile
 * streaming, reduce and MFU unit occupancy, VRF ports, network queues,
 * DRAM) plus one ChainProfile per retired instruction chain carrying the
 * chain's wait breakdown. Sinks are pluggable: EventTrace ring-buffers
 * events for post-run export (Chrome trace JSON, stall attribution) and
 * TextTraceSink streams human-readable chain lines (the BW_TIMING_TRACE
 * behaviour). Emission is disabled — a single null check — when no sink
 * is attached, and recording never perturbs simulated timing.
 */

#ifndef BW_OBS_TRACE_H
#define BW_OBS_TRACE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "arch/mem_id.h"
#include "common/units.h"

namespace bw {
namespace obs {

/** Resource classes of the microarchitecture, one trace track each. */
enum class ResClass : uint8_t
{
    ControlProcessor = 0, //!< scalar control processor (dispatch)
    TopScheduler,         //!< top-level scheduler / decoder
    TileEngine,           //!< MVM matrix-vector tile engines
    ReduceUnit,           //!< cross-tile add-reduction units
    MfuUnit,              //!< multifunction units (add/mul/act)
    VrfPort,              //!< vector register-file read/write ports
    Network,              //!< network input/output queues
    Dram,                 //!< accelerator-local DRAM channel
    ServeQueue,           //!< serving-engine request queue (bw::serve)
    ServeWorker,          //!< serving-engine accelerator replica
    NumResClasses
};

const char *resClassName(ResClass r);

/** What a busy interval represents. */
enum class EventKind : uint8_t
{
    Dispatch = 0, //!< control processor streaming a chain's instructions
    Decode,       //!< top-level schedule + hierarchical decode
    TileStream,   //!< one MRF tile streamed through a dot-product engine
    Reduce,       //!< cross-tile accumulation of one output vector
    MfuOp,        //!< one vector through one MFU function unit
    VrfRead,      //!< vector read port occupancy
    VrfWrite,     //!< vector write port occupancy
    NetIn,        //!< network input queue transfer
    NetOut,       //!< network output queue transfer
    DramRead,     //!< DRAM read burst
    DramWrite,    //!< DRAM write burst
    QueueWait,    //!< request waiting in the serving-engine queue
    Service,      //!< request in service on an engine worker
    NumEventKinds
};

const char *eventKindName(EventKind k);

/** One busy interval of one resource instance. */
struct TraceEvent
{
    Cycles start = 0; //!< cycle service began
    Cycles end = 0;   //!< cycle the resource becomes free again
    EventKind kind = EventKind::Dispatch;
    ResClass res = ResClass::ControlProcessor;
    uint16_t resIndex = 0; //!< instance within the class (engine, unit, port)
    uint32_t chain = 0;    //!< owning chain (first-instruction index)
    MemId mem = MemId::InitialVrf; //!< memory space detail, when relevant
    uint32_t addr = 0;             //!< address detail, when relevant
};

/**
 * Wait breakdown of one retired chain: where its cycles went between
 * entering the control processor and its last write landing. The
 * categories mirror the paper's decomposition — instruction-delivery
 * cost (dispatch/decode), data hazards (scoreboard), input availability
 * (NetQ arrivals), and structural hazards (busy resources).
 */
struct ChainProfile
{
    uint32_t chain = 0;   //!< first-instruction index within the program
    char kind = 'V';      //!< 'V'ector, 'M'atrix
    std::string label;    //!< disassembly of the head instruction

    Cycles dispatchStart = 0; //!< control processor began streaming
    Cycles dispatchDone = 0;  //!< last compound instruction accepted
    Cycles decodeDone = 0;    //!< schedule + decode complete
    Cycles done = 0;          //!< last write of the chain landed

    /** Cycles spent waiting on a scoreboard (RAW) hazard. */
    Cycles dataStall = 0;
    /** Cycles spent waiting for NetQ input arrivals. */
    Cycles inputStall = 0;
    /** Cycles spent waiting for busy resources (structural hazards). */
    Cycles structStall = 0;

    /** Worst single data-hazard wait and the register it waited on. */
    Cycles worstDataStall = 0;
    MemId dataStallMem = MemId::InitialVrf;
    uint32_t dataStallAddr = 0;
    /** Worst single structural wait and the resource responsible. */
    Cycles worstStructStall = 0;
    ResClass structRes = ResClass::ControlProcessor;
};

/** Receiver of trace events; attach to NpuTiming::setTraceSink(). */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One resource busy interval. */
    virtual void event(const TraceEvent &e) = 0;

    /** One chain retired (after its last write). */
    virtual void chainRetired(const ChainProfile &p) { (void)p; }
};

/**
 * Ring-buffered in-memory trace. Keeps the most recent @p capacity
 * events (oldest dropped first) and every chain profile; feed to
 * chromeTraceJson() / buildStallReport() after the run.
 */
class EventTrace : public TraceSink
{
  public:
    explicit EventTrace(size_t capacity = kDefaultCapacity);

    void event(const TraceEvent &e) override;
    void chainRetired(const ChainProfile &p) override;

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> events() const;

    const std::vector<ChainProfile> &chains() const { return chains_; }

    /** Total events offered to the sink (including dropped). */
    uint64_t emitted() const { return emitted_; }
    /** Events evicted from the ring. */
    uint64_t dropped() const
    {
        return emitted_ - std::min<uint64_t>(emitted_, ring_.size());
    }
    size_t capacity() const { return capacity_; }

    void clear();

    static constexpr size_t kDefaultCapacity = 1u << 20;

  private:
    size_t capacity_;
    size_t head_ = 0; //!< next slot to overwrite once the ring is full
    uint64_t emitted_ = 0;
    std::vector<TraceEvent> ring_;
    std::vector<ChainProfile> chains_;
};

/**
 * Streaming text sink: prints one line per retired chain (and, when
 * @p verbose, one line per event) — the BW_TIMING_TRACE debugging aid.
 */
class TextTraceSink : public TraceSink
{
  public:
    explicit TextTraceSink(std::FILE *out = stderr, bool verbose = false)
        : out_(out), verbose_(verbose)
    {
    }

    void event(const TraceEvent &e) override;
    void chainRetired(const ChainProfile &p) override;

  private:
    std::FILE *out_;
    bool verbose_;
};

} // namespace obs
} // namespace bw

#endif // BW_OBS_TRACE_H
