/**
 * @file
 * Fleet observability plane: cross-shard metric federation, a
 * cluster-level SLO rollup, and bounded-memory NDJSON streaming exports.
 *
 * The paper's deployment (Section II, Fig. 1) is operated as one
 * system: hyperscale services are monitored at fleet granularity, not
 * per-FPGA. Below this layer every engine shard keeps its own metrics
 * registry, flight recorder and SLO monitor precisely so that the
 * unlabeled bw_serve_* series of two engines never collide; the fleet
 * plane is where they are allowed to meet again, with the identity that
 * was implicit in the shard made explicit as labels:
 *
 *   - FleetRegistry federates the per-shard registries (PR 3) plus the
 *     cluster-level registry into one snapshot stream: every shard
 *     series gains {shard="s10/0", group="s10"} labels, cluster series
 *     (bw_cluster_*, already labeled by engine/model/class) pass
 *     through untouched. Families are regrouped by first appearance so
 *     the merged exposition stays valid Prometheus text (one # TYPE
 *     per family). Served at /fleet/metrics and /fleet/metrics.json.
 *   - sloRollupJson() aggregates every shard monitor's bw.slo/1
 *     evaluation per deadline class — lifetime counters and window
 *     good/bad counts are summed, bad-fraction / burn-rate / firing
 *     recomputed on the fleet aggregate — so the multi-window page
 *     alert fires on fleet-wide burn, not on one noisy shard. Each
 *     shard is evaluated at its own high-water mark (shard clocks are
 *     independent); the rollup's evaluated_at_us is the fleet maximum.
 *   - Streaming exports replace the materialized in-memory logs for
 *     multi-million-request replays: RouteStreamWriter emits one
 *     bw.routestream/1 NDJSON line per routing decision as it is made
 *     (O(1) memory regardless of trace length), and the span/flight
 *     streamers render one trace/record per line from the bounded
 *     rings. Every stream ends in a summary line whose counters the
 *     validators check — a truncated stream is detected, not silently
 *     accepted.
 *
 * Everything here is deterministic for deterministic input: federation
 * order is registration order x collect() order, the rollup is a pure
 * function of shard snapshots, and stream lines are compact dumps of
 * ordered Json objects.
 */

#ifndef BW_OBS_FLEET_H
#define BW_OBS_FLEET_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "metrics/metrics.h"
#include "obs/flight.h"
#include "obs/span.h"
#include "serve/slo.h"

namespace bw {
namespace obs {

/** One engine shard's observability sources (all non-owning). */
struct FleetShardSource
{
    std::string shard; //!< shard label, e.g. "s10/0"
    std::string group; //!< replica-group label, e.g. "s10"
    const metrics::Registry *registry = nullptr;
    const serve::SloMonitor *slo = nullptr;
};

/**
 * Cross-shard metric federation. Registration order is export order;
 * register once at cluster construction, then federate at scrape time
 * (snapshots are taken live, so the fleet view is as fresh as the
 * per-shard views it merges).
 */
class FleetRegistry
{
  public:
    /** Cluster-level registry (bw_cluster_* series), passed through
     *  without extra labels (non-owning; may be null). */
    void setClusterRegistry(const metrics::Registry *registry);

    /** Register one shard's registry + SLO monitor under its labels. */
    void addShard(std::string shard, std::string group,
                  const metrics::Registry *registry,
                  const serve::SloMonitor *slo = nullptr);

    size_t shardCount() const { return shards_.size(); }

    /**
     * The federated snapshot: cluster series first, then every shard's
     * series with {shard, group} labels appended, regrouped family-
     * major (order of first appearance) so prometheusText() emits one
     * # HELP / # TYPE pair per family.
     */
    std::vector<metrics::MetricSnapshot> federate() const;

    /** federate() rendered as Prometheus text (/fleet/metrics). */
    std::string prometheus() const;

    /** federate() rendered as ordered Json (/fleet/metrics.json). */
    Json metricsJson() const;

    /**
     * Fleet SLO rollup, schema bw.slo/1 (validateSloJson-clean):
     * per-class lifetime counters and window good/bad sums across every
     * registered shard monitor, with bad_fraction, burn_rate and the
     * multi-window firing flag recomputed on the aggregate. Objectives,
     * windows and the class ladder come from the first shard monitor
     * (the cluster shares one SloOptions across shards).
     * evaluated_at_us is the fleet-wide high-water mark.
     */
    Json sloRollupJson() const;

  private:
    const metrics::Registry *cluster_ = nullptr;
    std::vector<FleetShardSource> shards_;
};

// --- Streaming NDJSON exports ---

/**
 * Chunk sink for streaming exports: return false to abort the stream
 * (client hung up, disk full) — the writer stops producing. Chunks are
 * whole NDJSON lines, terminated with '\n'.
 */
using StreamSink = std::function<bool(const std::string &chunk)>;

/**
 * Streaming router-decision log, schema bw.routestream/1. Wire format,
 * one JSON object per line:
 *
 *   {"schema":"bw.routestream/1","policy":"...","engines":N}   header
 *   {"seq":1,"model":0,"class":0,"engine":2}                   per row
 *   {"summary":true,"rows":R,"routed":...,"shed":...,
 *    "shed_by_class":[...]}                                    trailer
 *
 * The writer holds O(1) state (counters only) no matter how many
 * decisions flow through it — this is the export that replaces the
 * materialized Router decision log for multi-million-request replays.
 * Attach it to Cluster::setDecisionSink().
 */
class RouteStreamWriter
{
  public:
    /** Writes the header line immediately. @p classes sizes the
     *  shed_by_class summary vector (the SLO class ladder). */
    RouteStreamWriter(StreamSink sink, std::string policy,
                      unsigned engines, size_t classes);

    /** Emit one decision row (engine -1 = front-door shed). Returns
     *  false once the sink has aborted; further calls are no-ops. */
    bool decision(uint64_t seq, uint32_t model, uint32_t cls,
                  int32_t engine);

    /** Emit the summary trailer. Idempotent; returns false when the
     *  sink aborted earlier. */
    bool finish();

    uint64_t rows() const { return routed_ + shed_; }
    uint64_t bytes() const { return bytes_; }
    bool failed() const { return failed_; }

  private:
    bool emit(const Json &j);

    StreamSink sink_;
    unsigned engines_ = 0;
    uint64_t routed_ = 0;
    uint64_t shed_ = 0;
    uint64_t bytes_ = 0;
    std::vector<uint64_t> shedByClass_;
    bool failed_ = false;
    bool finished_ = false;
};

/**
 * Validate a bw.routestream/1 NDJSON stream in O(1) memory (line by
 * line): header schema and engine count, per-row required fields and
 * engine range, and the summary trailer's counters against the counted
 * rows. A stream that ends without the trailer — or whose final line is
 * a truncated JSON fragment — is invalid.
 */
Status validateRouteStreamJson(std::istream &in);

/** validateRouteStreamJson over a file. */
Status validateRouteStreamFile(const std::string &path);

/**
 * Stream the span-tree export as NDJSON, schema bw.spanstream/1: a
 * header line, then one complete trace tree per line (the traces[i]
 * object of spanTreeJson), then a summary trailer {"summary":true,
 * "traces":T,"spans":S,"dropped":D}. Memory is bounded by the largest
 * single trace, not the export size.
 */
Status streamSpanTreesNdjson(const std::vector<SpanRecord> &spans,
                             uint64_t dropped, const StreamSink &sink);

/** streamSpanTreesNdjson(tracer.collect(), tracer.dropped(), sink). */
Status streamSpanTreesNdjson(const SpanTracer &tracer,
                             const StreamSink &sink);

/** Line-by-line validator for a bw.spanstream/1 stream: header tag,
 *  one object per line with ascending trace ids and a root object,
 *  and the summary trailer's counts against the counted lines. */
Status validateSpanStreamJson(std::istream &in);

/**
 * Stream the promoted flight log as NDJSON, schema bw.flightstream/1: a
 * header line, then one promoted record per line (the flightJson record
 * fields plus an embedded single-trace "spans" document), then a
 * summary trailer {"summary":true,"promoted":P,"recorded":R,
 * "dropped":D}. Memory is bounded by one record's span tree.
 */
Status streamFlightNdjson(const FlightRecorder &recorder,
                          const StreamSink &sink,
                          const ChainProfileFn &chains_for = {});

/** Line-by-line validator for a bw.flightstream/1 stream. */
Status validateFlightStreamJson(std::istream &in);

/** Dispatch on an NDJSON stream's header schema tag (bw.routestream/1,
 *  bw.spanstream/1 or bw.flightstream/1) and run the matching
 *  validator. The bw_spans `validate-stream` mode. */
Status validateStreamFile(const std::string &path);

} // namespace obs
} // namespace bw

#endif // BW_OBS_FLEET_H
