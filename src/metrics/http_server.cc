#include "metrics/http_server.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/logging.h"
#include "metrics/exposition.h"

#if defined(__unix__) || defined(__APPLE__)
#define BW_HAVE_POSIX_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace bw {
namespace metrics {

namespace {

std::string
httpResponse(int code, const char *reason, const std::string &type,
             const std::string &body)
{
    std::ostringstream out;
    out << "HTTP/1.1 " << code << " " << reason << "\r\n"
        << "Content-Type: " << type << "\r\n"
        << "Content-Length: " << body.size() << "\r\n"
        << "Connection: close\r\n\r\n"
        << body;
    return out.str();
}

#if BW_HAVE_POSIX_SOCKETS

/**
 * Write the whole buffer, looping over short writes and retrying
 * EINTR. A /metrics.json payload easily exceeds one socket buffer, so
 * a single send() would silently truncate the response under load.
 */
bool
sendAll(int fd, const std::string &data)
{
#ifdef MSG_NOSIGNAL
    const int flags = MSG_NOSIGNAL; // EPIPE instead of SIGPIPE
#else
    const int flags = 0;
#endif
    size_t off = 0;
    while (off < data.size()) {
        ssize_t w = ::send(fd, data.data() + off, data.size() - off,
                           flags);
        if (w < 0 && errno == EINTR)
            continue;
        if (w <= 0)
            return false; // peer gone; nothing useful to do
        off += static_cast<size_t>(w);
    }
    return true;
}

#endif // BW_HAVE_POSIX_SOCKETS

} // namespace

MetricsHttpServer::MetricsHttpServer(const Registry &registry)
    : registry_(registry)
{
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

void
MetricsHttpServer::handleJson(std::string path,
                              std::function<std::string()> body)
{
    handleText(std::move(path), "application/json", std::move(body));
}

void
MetricsHttpServer::handleText(std::string path, std::string content_type,
                              std::function<std::string()> body)
{
    for (Handler &h : handlers_) {
        if (h.path == path) {
            h.contentType = std::move(content_type);
            h.body = std::move(body);
            return;
        }
    }
    handlers_.push_back(
        Handler{std::move(path), std::move(content_type), std::move(body)});
}

void
MetricsHttpServer::handleStream(
    std::string path, std::function<void(const StreamSink &)> handler)
{
    for (auto &h : streamHandlers_) {
        if (h.first == path) {
            h.second = std::move(handler);
            return;
        }
    }
    streamHandlers_.emplace_back(std::move(path), std::move(handler));
}

void
MetricsHttpServer::setReadiness(std::function<bool()> ready)
{
    ready_ = std::move(ready);
}

std::string
MetricsHttpServer::respond(const std::string &request_line) const
{
    std::istringstream in(request_line);
    std::string method, path;
    in >> method >> path;
    if (method != "GET") {
        return httpResponse(405, "Method Not Allowed", "text/plain",
                            "only GET is supported\n");
    }
    // Strip any query string before routing.
    size_t q = path.find('?');
    if (q != std::string::npos)
        path.resize(q);
    if (path == "/metrics") {
        return httpResponse(
            200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            prometheusText(registry_));
    }
    if (path == "/metrics.json") {
        return httpResponse(200, "OK", "application/json",
                            metricsJson(registry_).dump(2) + "\n");
    }
    if (path == "/healthz" || path == "/") {
        // Liveness vs readiness: the listener answering at all is
        // liveness; a draining engine flips the probe so the front
        // door stops routing here while in-flight work finishes.
        if (ready_ && !ready_()) {
            return httpResponse(503, "Service Unavailable",
                                "application/json",
                                "{\"draining\": true}\n");
        }
        return httpResponse(200, "OK", "text/plain", "ok\n");
    }
    for (const Handler &h : handlers_) {
        if (h.path == path)
            return httpResponse(200, "OK", h.contentType, h.body());
    }
    return httpResponse(404, "Not Found", "text/plain",
                        "try /metrics, /metrics.json or /healthz\n");
}

bool
MetricsHttpServer::respondStream(const std::string &request_line,
                                 const StreamSink &sink) const
{
    std::istringstream in(request_line);
    std::string method, path;
    in >> method >> path;
    if (method != "GET")
        return false;
    size_t q = path.find('?');
    if (q != std::string::npos)
        path.resize(q);
    for (const auto &h : streamHandlers_) {
        if (h.first != path)
            continue;
        // No Content-Length: the closed connection delimits the body,
        // so the handler can produce chunks it never holds at once.
        if (sink("HTTP/1.1 200 OK\r\n"
                 "Content-Type: application/x-ndjson\r\n"
                 "Connection: close\r\n\r\n"))
            h.second(sink);
        return true;
    }
    return false;
}

#if BW_HAVE_POSIX_SOCKETS

Status
MetricsHttpServer::start(uint16_t port)
{
    if (running_.load())
        return Status::failedPrecondition("server already running");

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::unavailable("socket() failed");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        ::close(fd);
        return Status::unavailable(bw::detail::format(
            "bind to port %u failed: %s", port, std::strerror(errno)));
    }
    if (::listen(fd, 16) < 0) {
        ::close(fd);
        return Status::unavailable("listen() failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    listenFd_ = fd;
    stopping_.store(false);
    running_.store(true);
    thread_ = std::thread(&MetricsHttpServer::acceptLoop, this);
    return Status();
}

void
MetricsHttpServer::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 200 /* ms */);
        if (rc <= 0 || !(pfd.revents & POLLIN))
            continue;
        int conn = ::accept(listenFd_, nullptr, nullptr);
        if (conn < 0)
            continue;
        // Read up to the end of the request line; the rest of the
        // request (headers) is irrelevant to routing.
        char buf[2048];
        ssize_t n = ::recv(conn, buf, sizeof(buf) - 1, 0);
        if (n > 0) {
            buf[n] = '\0';
            std::string line(buf);
            size_t eol = line.find("\r\n");
            if (eol != std::string::npos)
                line.resize(eol);
            StreamSink socket_sink = [conn](const std::string &chunk) {
                return sendAll(conn, chunk);
            };
            if (!respondStream(line, socket_sink))
                sendAll(conn, respond(line));
        }
        ::close(conn);
    }
}

void
MetricsHttpServer::stop()
{
    if (!running_.load())
        return;
    stopping_.store(true);
    thread_.join();
    ::close(listenFd_);
    listenFd_ = -1;
    running_.store(false);
}

#else // !BW_HAVE_POSIX_SOCKETS

Status
MetricsHttpServer::start(uint16_t port)
{
    (void)port;
    return Status::unavailable(
        "metrics HTTP server requires POSIX sockets");
}

void
MetricsHttpServer::acceptLoop()
{
}

void
MetricsHttpServer::stop()
{
}

#endif // BW_HAVE_POSIX_SOCKETS

} // namespace metrics
} // namespace bw
