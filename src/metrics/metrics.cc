#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bw {
namespace metrics {

const char *
metricTypeName(MetricType t)
{
    switch (t) {
      case MetricType::Counter: return "counter";
      case MetricType::Gauge: return "gauge";
      case MetricType::Histogram: return "histogram";
      default: BW_PANIC("bad MetricType %d", static_cast<int>(t));
    }
}

namespace detail {

size_t
shardSlot()
{
    static std::atomic<size_t> next{0};
    thread_local const size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return slot;
}

} // namespace detail

// --- Histogram ---

Histogram::Histogram(HistogramOptions opts) : opts_(opts)
{
    BW_ASSERT(opts_.lowest > 0 && opts_.highest > opts_.lowest &&
                  opts_.bucketsPerDecade > 0,
              "histogram needs 0 < lowest < highest and buckets per "
              "decade > 0");
    // Underflow bound first, then geometric boundaries until the range
    // is covered. Boundaries are precomputed once so bucketIndex() can
    // resolve edge values exactly against them (no log() round-trip
    // ambiguity at bucket boundaries).
    bounds_.push_back(opts_.lowest);
    for (unsigned i = 1; bounds_.back() < opts_.highest; ++i) {
        bounds_.push_back(opts_.lowest *
                          std::pow(10.0, static_cast<double>(i) /
                                             opts_.bucketsPerDecade));
    }
    for (auto &s : shards_) {
        s.counts =
            std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
        s.exemplars =
            std::vector<detail::ExemplarCell>(bounds_.size() + 1);
    }
}

size_t
Histogram::bucketIndex(double v) const
{
    if (!(v > bounds_.front()))
        return 0; // underflow (<= lowest), and NaN defensively
    if (v > bounds_.back())
        return bounds_.size(); // overflow (+Inf bucket)
    // Bucket i covers (bounds[i-1], bounds[i]]: first bound >= v.
    return static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
}

void
Histogram::record(double v)
{
    Shard &s = shards_[detail::shardSlot()];
    s.counts[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    detail::atomicAdd(s.sum, v);
    detail::atomicMax(s.maxValue, v);
}

void
Histogram::recordExemplar(double v, uint64_t trace_id)
{
    Shard &s = shards_[detail::shardSlot()];
    size_t b = bucketIndex(v);
    s.counts[b].fetch_add(1, std::memory_order_relaxed);
    detail::atomicAdd(s.sum, v);
    detail::atomicMax(s.maxValue, v);
    if (trace_id == 0)
        return;
    detail::ExemplarCell &cell = s.exemplars[b];
    if (cell.trace.load(std::memory_order_relaxed) == 0 ||
        v >= cell.value.load(std::memory_order_relaxed)) {
        cell.value.store(v, std::memory_order_relaxed);
        cell.trace.store(trace_id, std::memory_order_relaxed);
    }
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot out;
    out.bounds = bounds_;
    out.counts.assign(bounds_.size() + 1, 0);
    out.exemplars.assign(bounds_.size() + 1, Exemplar{});
    for (const Shard &s : shards_) {
        for (size_t i = 0; i < s.counts.size(); ++i)
            out.counts[i] += s.counts[i].load(std::memory_order_relaxed);
        for (size_t i = 0; i < s.exemplars.size(); ++i) {
            uint64_t trace =
                s.exemplars[i].trace.load(std::memory_order_relaxed);
            double value =
                s.exemplars[i].value.load(std::memory_order_relaxed);
            if (trace != 0 && (out.exemplars[i].traceId == 0 ||
                               value > out.exemplars[i].value)) {
                out.exemplars[i] = {value, trace};
            }
        }
        out.sum += s.sum.load(std::memory_order_relaxed);
        out.maxValue = std::max(
            out.maxValue, s.maxValue.load(std::memory_order_relaxed));
    }
    for (uint64_t c : out.counts)
        out.count += c;
    return out;
}

double
HistogramSnapshot::quantile(double pct) const
{
    if (count == 0)
        return 0.0;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(pct / 100.0 * static_cast<double>(count)));
    rank = std::clamp<uint64_t>(rank, 1, count);
    uint64_t cum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (cum >= rank) {
            // Overflow bucket has no finite upper bound; the max
            // observed sample is the tightest honest answer.
            return i < bounds.size() ? bounds[i] : maxValue;
        }
    }
    return maxValue;
}

double
HistogramSnapshot::bucketWidthBelow(double upper) const
{
    for (size_t i = 0; i < bounds.size(); ++i) {
        if (bounds[i] >= upper)
            return i == 0 ? bounds[0] : bounds[i] - bounds[i - 1];
    }
    return bounds.empty() ? 0.0
                          : bounds.back() - bounds[bounds.size() - 2];
}

// --- name validation ---

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (char c : name) {
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    }
    return true;
}

bool
validLabelName(const std::string &name)
{
    // Same as a metric name, minus the colon.
    return validMetricName(name) &&
           name.find(':') == std::string::npos;
}

// --- Registry ---

Registry::Family &
Registry::family(const std::string &name, const std::string &help,
                 MetricType type)
{
    for (auto &f : families_) {
        if (f->name == name) {
            if (f->type != type) {
                BW_FATAL("metric %s already registered as %s, not %s",
                         name.c_str(), metricTypeName(f->type),
                         metricTypeName(type));
            }
            return *f;
        }
    }
    if (!validMetricName(name))
        BW_FATAL("invalid metric name '%s'", name.c_str());
    auto f = std::make_unique<Family>();
    f->name = name;
    f->help = help;
    f->type = type;
    families_.push_back(std::move(f));
    return *families_.back();
}

Registry::Instance &
Registry::instance(Family &f, Labels labels)
{
    for (auto &i : f.instances) {
        if (i->labels == labels)
            return *i;
    }
    for (const auto &[k, v] : labels) {
        (void)v;
        if (!validLabelName(k))
            BW_FATAL("invalid label name '%s' on metric %s", k.c_str(),
                     f.name.c_str());
    }
    auto i = std::make_unique<Instance>();
    i->labels = std::move(labels);
    f.instances.push_back(std::move(i));
    return *f.instances.back();
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  Labels labels)
{
    std::lock_guard<std::mutex> lk(mu_);
    Instance &i = instance(family(name, help, MetricType::Counter),
                           std::move(labels));
    if (!i.counter)
        i.counter = std::make_unique<Counter>();
    return *i.counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                Labels labels)
{
    std::lock_guard<std::mutex> lk(mu_);
    Instance &i = instance(family(name, help, MetricType::Gauge),
                           std::move(labels));
    if (!i.gauge)
        i.gauge = std::make_unique<Gauge>();
    return *i.gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    HistogramOptions opts, Labels labels)
{
    std::lock_guard<std::mutex> lk(mu_);
    Instance &i = instance(family(name, help, MetricType::Histogram),
                           std::move(labels));
    if (!i.histogram)
        i.histogram = std::make_unique<Histogram>(opts);
    return *i.histogram;
}

std::vector<MetricSnapshot>
Registry::collect() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<MetricSnapshot> out;
    for (const auto &f : families_) {
        for (const auto &i : f->instances) {
            MetricSnapshot s;
            s.name = f->name;
            s.help = f->help;
            s.type = f->type;
            s.labels = i->labels;
            switch (f->type) {
              case MetricType::Counter:
                s.value = static_cast<double>(i->counter->value());
                break;
              case MetricType::Gauge:
                s.value = i->gauge->value();
                break;
              case MetricType::Histogram:
                s.hist = i->histogram->snapshot();
                break;
            }
            out.push_back(std::move(s));
        }
    }
    return out;
}

size_t
Registry::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    size_t n = 0;
    for (const auto &f : families_)
        n += f->instances.size();
    return n;
}

} // namespace metrics
} // namespace bw
