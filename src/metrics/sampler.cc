#include "metrics/sampler.h"

#include <cmath>

#include "common/logging.h"

namespace bw {
namespace metrics {

Sampler::Sampler(const Registry &registry, double period_ms,
                 std::chrono::steady_clock::time_point epoch)
    : registry_(registry), periodMs_(std::max(1.0, period_ms)),
      epoch_(epoch)
{
}

Sampler::~Sampler()
{
    stop();
}

void
Sampler::start()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (running_)
        return;
    running_ = true;
    stopping_ = false;
    thread_ = std::thread(&Sampler::loop, this);
}

void
Sampler::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!running_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
    {
        std::lock_guard<std::mutex> lk(mu_);
        running_ = false;
    }
    sampleOnce(); // final state so the series covers the full run
}

void
Sampler::sampleOnce()
{
    uint64_t t_us = static_cast<uint64_t>(std::max(
        0.0, std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - epoch_)
                 .count()));
    record(t_us);
}

void
Sampler::record(uint64_t t_us)
{
    std::vector<Sample> batch;
    for (const MetricSnapshot &m : registry_.collect()) {
        if (m.type == MetricType::Histogram)
            continue; // counter tracks show scalars; histograms don't fit
        Sample s;
        s.tUs = t_us;
        s.name = m.name;
        s.labels = m.labels;
        s.value = m.value;
        batch.push_back(std::move(s));
    }
    std::lock_guard<std::mutex> lk(mu_);
    for (Sample &s : batch)
        samples_.push_back(std::move(s));
}

void
Sampler::loop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (!stopping_) {
        lk.unlock();
        sampleOnce();
        lk.lock();
        cv_.wait_for(lk,
                     std::chrono::duration<double, std::milli>(periodMs_),
                     [&] { return stopping_; });
    }
}

std::vector<Sample>
Sampler::samples() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return samples_;
}

Json
counterTraceEvents(const std::vector<Sample> &samples)
{
    Json events = Json::array();
    for (const Sample &s : samples) {
        // One counter track per metric instance: fold the labels into
        // the track name so replica-labeled series stay separate.
        std::string name = s.name;
        if (!s.labels.empty()) {
            name += "[";
            for (size_t i = 0; i < s.labels.size(); ++i) {
                if (i)
                    name += ",";
                name += s.labels[i].first + "=" + s.labels[i].second;
            }
            name += "]";
        }
        Json args = Json::object();
        args.set("value", s.value);
        Json ev = Json::object();
        ev.set("name", std::move(name));
        ev.set("ph", "C");
        ev.set("ts", static_cast<double>(s.tUs));
        ev.set("pid", 0);
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }
    return events;
}

void
appendCounterEvents(Json &chrome_doc, const std::vector<Sample> &samples)
{
    const Json *existing = chrome_doc.find("traceEvents");
    BW_ASSERT(existing,
              "appendCounterEvents: document has no traceEvents array");
    Json merged = Json::array();
    for (size_t i = 0; i < existing->size(); ++i)
        merged.push(existing->at(i));
    Json counters = counterTraceEvents(samples);
    for (size_t i = 0; i < counters.size(); ++i)
        merged.push(counters.at(i));
    chrome_doc.set("traceEvents", std::move(merged));
}

} // namespace metrics
} // namespace bw
