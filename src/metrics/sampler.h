/**
 * @file
 * Background metrics sampler: a thread that snapshots every counter
 * and gauge in a Registry on a configurable period, producing a
 * timestamped series. The series exports as Chrome trace counter
 * events (ph:"C"), so sampled metrics — queue depth, inflight
 * requests, per-replica busy time — overlay the serving engine's
 * Perfetto timeline as counter tracks above the event waterfall.
 */

#ifndef BW_METRICS_SAMPLER_H
#define BW_METRICS_SAMPLER_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "metrics/metrics.h"

namespace bw {
namespace metrics {

/** One sampled value of one counter/gauge instance. */
struct Sample
{
    uint64_t tUs = 0; //!< microseconds since the sampler's epoch
    std::string name;
    Labels labels;
    double value = 0;
};

/**
 * Samples @p registry every @p period_ms on a background thread
 * between start() and stop(). Timestamps are measured from @p epoch so
 * they can share a clock with serve::Engine's trace (pass
 * engine.epoch()); the default epoch is construction time.
 */
class Sampler
{
  public:
    explicit Sampler(
        const Registry &registry, double period_ms = 100.0,
        std::chrono::steady_clock::time_point epoch =
            std::chrono::steady_clock::now());

    /** Joins the thread (taking one final sample) if still running. */
    ~Sampler();

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Spawn the sampling thread (idempotent). */
    void start();

    /** Take a final sample, then join the thread (idempotent). */
    void stop();

    /** Take one sample now, on the caller's thread (usable without
     *  start() for deterministic tests). */
    void sampleOnce();

    double periodMs() const { return periodMs_; }

    /** All samples so far, oldest first (thread-safe copy). */
    std::vector<Sample> samples() const;

  private:
    void loop();
    void record(uint64_t t_us);

    const Registry &registry_;
    double periodMs_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool running_ = false;
    bool stopping_ = false;
    std::thread thread_;
    std::vector<Sample> samples_;
};

/**
 * Render samples as Chrome trace counter events (ph:"C", one counter
 * track per metric instance). Returns a JSON array suitable for
 * concatenation with other traceEvents.
 */
Json counterTraceEvents(const std::vector<Sample> &samples);

/**
 * Append counter events for @p samples to @p chrome_doc's traceEvents
 * array (a document from obs::chromeTraceJson()), overlaying the
 * sampled series on the event timeline.
 */
void appendCounterEvents(Json &chrome_doc,
                         const std::vector<Sample> &samples);

} // namespace metrics
} // namespace bw

#endif // BW_METRICS_SAMPLER_H
