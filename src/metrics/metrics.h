/**
 * @file
 * Live metrics for the serving stack: a typed registry of Counters,
 * Gauges and Histograms designed for the serve::Engine hot path.
 *
 * The paper's headline numbers — effective TFLOPS, utilization (Fig. 7),
 * millisecond-scale tail latency under live traffic — are steady-state
 * operational signals. Traces and one-shot stats snapshots only show a
 * run after it ends; this registry exposes the same quantities *while*
 * the engine is under load, in formats standard tooling can scrape
 * (Prometheus text, the repo's ordered Json, Chrome trace counter
 * events).
 *
 * Hot-path design:
 *  - Counters and histograms are sharded per thread: each recording
 *    thread owns a cache-line-padded slot (assigned round-robin on
 *    first use), so engine workers never contend on a shared atomic.
 *    Reads merge the shards.
 *  - Histograms are log-bucketed (geometric bucket boundaries) and
 *    mergeable; p50/p95/p99 are estimated from the buckets and are
 *    guaranteed to land in the same bucket as the exact nearest-rank
 *    value (within one bucket width — tested against ServeStats).
 *  - Recording is wait-free (relaxed atomics, one CAS loop for the
 *    histogram sum); registration takes a mutex and returns stable
 *    references that live as long as the Registry.
 */

#ifndef BW_METRICS_METRICS_H
#define BW_METRICS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bw {
namespace metrics {

/** Metric kinds, matching the Prometheus exposition TYPE names. */
enum class MetricType : uint8_t
{
    Counter = 0, //!< monotonically increasing count
    Gauge,       //!< instantaneous value, may go up or down
    Histogram,   //!< log-bucketed sample distribution
};

const char *metricTypeName(MetricType t);

/** Ordered label set attached to one metric instance. */
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/** Shard count: distinct recording threads (up to kShards) never share
 *  a cache line. More threads than shards wrap around — still correct,
 *  merely contended. */
constexpr size_t kShards = 16;

/** Round-robin shard slot of the calling thread (stable per thread). */
size_t shardSlot();

/** A cache-line-padded atomic counter cell. */
struct alignas(64) PaddedCount
{
    std::atomic<uint64_t> v{0};
};

/** Wait-free add on an atomic double (CAS loop). */
inline void
atomicAdd(std::atomic<double> &a, double delta)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + delta,
                                    std::memory_order_relaxed)) {
    }
}

/** Raise an atomic double to at least @p v (CAS loop). */
inline void
atomicMax(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (cur < v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

/** A per-bucket exemplar cell: lock-free, max-value-wins. */
struct ExemplarCell
{
    std::atomic<double> value{0.0};
    std::atomic<uint64_t> trace{0};
};

} // namespace detail

/** One histogram exemplar: the largest sample its bucket has seen and
 *  the span-tracing trace id of the request that produced it. */
struct Exemplar
{
    double value = 0;
    uint64_t traceId = 0; //!< 0 = the bucket has no exemplar
};

/**
 * Monotonic counter, sharded per thread: add() touches only the calling
 * thread's cache-line-padded slot; value() sums the shards.
 */
class Counter
{
  public:
    void
    add(uint64_t delta = 1)
    {
        shards_[detail::shardSlot()].v.fetch_add(
            delta, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    uint64_t
    value() const
    {
        uint64_t sum = 0;
        for (const auto &s : shards_)
            sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    std::array<detail::PaddedCount, detail::kShards> shards_;
};

/** Instantaneous value; set/add are lock-free, last-writer-wins. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void add(double delta) { detail::atomicAdd(value_, delta); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Histogram bucket layout: geometric (log-spaced) boundaries. */
struct HistogramOptions
{
    /** Lowest finite bucket boundary; samples <= lowest land in the
     *  underflow bucket (upper bound = lowest). */
    double lowest = 1e-3;
    /** Samples above the last boundary >= highest land in the overflow
     *  (+Inf) bucket. */
    double highest = 1e4;
    /** Buckets per decade: boundaries at lowest * 10^(i / perDecade),
     *  i.e. a growth factor of 10^(1/perDecade) (~1.26 at 10). */
    unsigned bucketsPerDecade = 10;
};

/**
 * Read-only merged view of a Histogram (or of one run of samples).
 * Bucket i (0-based) counts samples in (bound(i-1), bound(i)], where
 * bound(-1) = 0 conceptually; the final slot counts overflow (+Inf).
 */
struct HistogramSnapshot
{
    /** Finite upper bounds, ascending; counts has one extra slot for
     *  the +Inf (overflow) bucket. */
    std::vector<double> bounds;
    std::vector<uint64_t> counts;
    /** Parallel to counts: the slowest exemplar recorded per bucket
     *  (traceId 0 where none; exported into /metrics.json). */
    std::vector<Exemplar> exemplars;
    uint64_t count = 0;
    double sum = 0;
    double maxValue = 0; //!< largest sample observed (0 when empty)

    /**
     * Nearest-rank quantile estimate from the buckets: the upper bound
     * of the bucket holding the rank-th sample (the max observed value
     * for the overflow bucket). Within one bucket width of the exact
     * nearest-rank value by construction. Zero when empty.
     */
    double quantile(double pct) const;

    /** Width of the bucket whose upper bound is @p upper (for
     *  tolerance checks against exact percentiles). */
    double bucketWidthBelow(double upper) const;
};

/**
 * Log-bucketed, mergeable latency histogram. record() is wait-free and
 * sharded per thread; snapshot() merges the shards (the merged result
 * equals a single-threaded recording of the same samples — tested).
 */
class Histogram
{
  public:
    explicit Histogram(HistogramOptions opts = {});

    /** Record one sample (values <= 0 land in the underflow bucket). */
    void record(double v);

    /**
     * As record(v), additionally offering (v, @p trace_id) as the
     * bucket's exemplar — kept when v is the largest exemplar the
     * bucket has seen, so each bucket remembers its slowest traced
     * request. Wait-free; the cell update is a benign racy max (two
     * racing writers may briefly pair one's value with the other's
     * id — exemplars are forensic hints, not accounting). trace_id 0
     * degenerates to record(v).
     */
    void recordExemplar(double v, uint64_t trace_id);

    /** Merged view of all shards. */
    HistogramSnapshot snapshot() const;

    /** Finite bucket upper bounds (ascending). */
    const std::vector<double> &bounds() const { return bounds_; }

    /** Index of the bucket @p v lands in (== bounds().size() for
     *  overflow): the first bucket whose upper bound is >= v. */
    size_t bucketIndex(double v) const;

    const HistogramOptions &options() const { return opts_; }

  private:
    struct alignas(64) Shard
    {
        std::vector<std::atomic<uint64_t>> counts;
        std::vector<detail::ExemplarCell> exemplars;
        std::atomic<double> sum{0.0};
        std::atomic<double> maxValue{0.0};
    };

    HistogramOptions opts_;
    std::vector<double> bounds_;
    std::array<Shard, detail::kShards> shards_;
};

/** One metric instance flattened for exposition. */
struct MetricSnapshot
{
    std::string name;
    std::string help;
    MetricType type = MetricType::Counter;
    Labels labels;
    double value = 0;       //!< counter / gauge
    HistogramSnapshot hist; //!< histogram only
};

/**
 * Named, labeled metric registry. Registration is get-or-create: the
 * same (name, labels) returns the same instance, so producers can
 * re-register idempotently. Instances within one name form a family
 * sharing a type and help string (grouped in the exposition).
 * Registration takes a mutex; returned references stay valid for the
 * registry's lifetime. collect() may run concurrently with recording.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Get or create. @p name must match [a-zA-Z_:][a-zA-Z0-9_:]*
     *  (throws bw::Error otherwise, as does a type conflict). */
    Counter &counter(const std::string &name, const std::string &help,
                     Labels labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 Labels labels = {});
    Histogram &histogram(const std::string &name, const std::string &help,
                         HistogramOptions opts = {}, Labels labels = {});

    /** Flattened snapshots, family-major in registration order. */
    std::vector<MetricSnapshot> collect() const;

    /** Registered instance count (all families). */
    size_t size() const;

  private:
    struct Instance
    {
        Labels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    struct Family
    {
        std::string name;
        std::string help;
        MetricType type = MetricType::Counter;
        std::vector<std::unique_ptr<Instance>> instances;
    };

    Family &family(const std::string &name, const std::string &help,
                   MetricType type);
    Instance &instance(Family &f, Labels labels);

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Family>> families_;
};

/** True when @p name is a valid Prometheus metric name. */
bool validMetricName(const std::string &name);

/** True when @p name is a valid Prometheus label name. */
bool validLabelName(const std::string &name);

} // namespace metrics
} // namespace bw

#endif // BW_METRICS_METRICS_H
