/**
 * @file
 * Minimal embedded HTTP endpoint for live metrics scraping: a
 * POSIX-socket listener serving GET /metrics (Prometheus text format
 * 0.0.4), GET /metrics.json (the repo's ordered Json) and GET /healthz
 * from a metrics::Registry. Opt-in: examples start it only when
 * BW_METRICS_PORT is set. One accept thread handles connections
 * serially — metrics responses are small and scrapes are rare, so no
 * connection pool is warranted.
 */

#ifndef BW_METRICS_HTTP_SERVER_H
#define BW_METRICS_HTTP_SERVER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"
#include "metrics/metrics.h"

namespace bw {
namespace metrics {

/** Serves a Registry over HTTP until stop() or destruction. */
class MetricsHttpServer
{
  public:
    explicit MetricsHttpServer(const Registry &registry);
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /**
     * Bind (port 0 picks an ephemeral port — see port()), listen, and
     * spawn the accept thread. Returns Unavailable on platforms
     * without POSIX sockets or when the bind/listen fails.
     */
    Status start(uint16_t port);

    /** Close the listener and join the accept thread (idempotent). */
    void stop();

    bool running() const { return running_.load(); }

    /** The bound port (resolves port-0 binds); 0 before start(). */
    uint16_t port() const { return port_; }

    /**
     * Compute the HTTP response for @p request_line (e.g. "GET
     * /metrics HTTP/1.1") — exposed so tests can exercise routing
     * without sockets.
     */
    std::string respond(const std::string &request_line) const;

  private:
    void acceptLoop();

    const Registry &registry_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread thread_;
};

} // namespace metrics
} // namespace bw

#endif // BW_METRICS_HTTP_SERVER_H
