/**
 * @file
 * Minimal embedded HTTP endpoint for live metrics scraping and debug
 * introspection: a POSIX-socket listener serving GET /metrics
 * (Prometheus text format 0.0.4), GET /metrics.json (the repo's
 * ordered Json) and GET /healthz from a metrics::Registry, plus any
 * number of registered JSON handlers (the serving engine mounts
 * /slo.json and the /debug family via Engine::exposeDebug). Opt-in:
 * examples start it only when BW_METRICS_PORT is set. One accept
 * thread handles connections serially — responses are small and
 * scrapes are rare, so no connection pool is warranted.
 *
 * /healthz distinguishes liveness from readiness: it is 200 "ok" while
 * the process serves, and 503 {"draining":true} once the registered
 * readiness probe reports not-ready (engine drain()/shutdown() begun),
 * so a cluster front door can evict a draining replica before its
 * listener disappears.
 */

#ifndef BW_METRICS_HTTP_SERVER_H
#define BW_METRICS_HTTP_SERVER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "metrics/metrics.h"

namespace bw {
namespace metrics {

/** Serves a Registry over HTTP until stop() or destruction. */
class MetricsHttpServer
{
  public:
    explicit MetricsHttpServer(const Registry &registry);
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /**
     * Mount a GET handler producing a JSON body at @p path (exact
     * match, query string stripped; re-registering a path replaces its
     * handler). The handler runs on the accept thread per request, so
     * live documents (queue snapshots, SLO evaluations) are computed at
     * scrape time. Register before start() or between requests — the
     * table is read without a lock on the serving path.
     */
    void handleJson(std::string path, std::function<std::string()> body);

    /**
     * Mount a GET handler with an explicit Content-Type (e.g. the
     * Prometheus text exposition at /fleet/metrics). Same mounting and
     * threading rules as handleJson.
     */
    void handleText(std::string path, std::string content_type,
                    std::function<std::string()> body);

    /**
     * Chunk sink handed to a streaming handler: push one chunk (an
     * NDJSON line) to the client. Returns false once the client is
     * gone — the handler should stop producing.
     */
    using StreamSink = std::function<bool(const std::string &chunk)>;

    /**
     * Mount a streaming GET handler at @p path: instead of returning
     * one materialized body, the handler pushes chunks through the
     * sink while the response is being written (Content-Type
     * application/x-ndjson, no Content-Length — the server closes the
     * connection to mark the end). This is how multi-million-row
     * exports are served at O(1) memory.
     */
    void handleStream(std::string path,
                      std::function<void(const StreamSink &)> handler);

    /**
     * Register the readiness probe consulted by /healthz: when it
     * returns false the endpoint answers 503 {"draining":true} instead
     * of 200 "ok", so load balancers evict the replica while in-flight
     * work finishes. Liveness (the listener answering at all) is
     * unaffected.
     */
    void setReadiness(std::function<bool()> ready);

    /**
     * Bind (port 0 picks an ephemeral port — see port()), listen, and
     * spawn the accept thread. Returns Unavailable on platforms
     * without POSIX sockets or when the bind/listen fails.
     */
    Status start(uint16_t port);

    /** Close the listener and join the accept thread (idempotent). */
    void stop();

    bool running() const { return running_.load(); }

    /** The bound port (resolves port-0 binds); 0 before start(). */
    uint16_t port() const { return port_; }

    /**
     * Compute the HTTP response for @p request_line (e.g. "GET
     * /metrics HTTP/1.1") — exposed so tests can exercise routing
     * without sockets.
     */
    std::string respond(const std::string &request_line) const;

    /**
     * Route @p request_line against the streaming handlers: when it
     * names a mounted stream, write the response head and the
     * handler's chunks through @p sink and return true; otherwise
     * return false (the caller falls back to respond()). Exposed so
     * tests can drive streaming without sockets.
     */
    bool respondStream(const std::string &request_line,
                       const StreamSink &sink) const;

  private:
    struct Handler
    {
        std::string path;
        std::string contentType;
        std::function<std::string()> body;
    };

    void acceptLoop();

    const Registry &registry_;
    std::vector<Handler> handlers_;
    std::vector<
        std::pair<std::string, std::function<void(const StreamSink &)>>>
        streamHandlers_;
    std::function<bool()> ready_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread thread_;
};

} // namespace metrics
} // namespace bw

#endif // BW_METRICS_HTTP_SERVER_H
