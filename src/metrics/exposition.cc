#include "metrics/exposition.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace bw {
namespace metrics {

namespace {

/** Prometheus sample value: integers exact, doubles shortest-roundtrip
 *  enough for monitoring (%.10g), non-finite in Prometheus spelling. */
std::string
fmtValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

/** Escape a label value per the text format (\\, \", \n). */
std::string
escapeLabelValue(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** {a="x",b="y"} rendered from @p labels plus an optional extra pair
 *  (the histogram le); empty string when there are no labels at all. */
std::string
labelBlock(const Labels &labels, const char *extra_key = nullptr,
           const std::string &extra_value = "")
{
    if (labels.empty() && !extra_key)
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += k + "=\"" + escapeLabelValue(v) + "\"";
    }
    if (extra_key) {
        if (!first)
            out += ",";
        out += std::string(extra_key) + "=\"" +
               escapeLabelValue(extra_value) + "\"";
    }
    out += "}";
    return out;
}

/** One-line help text: newlines would break the exposition. */
std::string
escapeHelp(const std::string &s)
{
    std::string out;
    for (char c : s)
        out += c == '\n' ? ' ' : c;
    return out;
}

std::string
labelsKey(const Labels &labels)
{
    std::string key;
    for (const auto &[k, v] : labels)
        key += k + "\x1f" + v + "\x1f";
    return key;
}

} // namespace

std::string
prometheusText(const std::vector<MetricSnapshot> &snapshots)
{
    std::string out;
    std::string current_family;
    for (const MetricSnapshot &m : snapshots) {
        if (m.name != current_family) {
            current_family = m.name;
            out += "# HELP " + m.name + " " + escapeHelp(m.help) + "\n";
            out += "# TYPE " + m.name + " " +
                   metricTypeName(m.type) + "\n";
        }
        if (m.type != MetricType::Histogram) {
            out += m.name + labelBlock(m.labels) + " " +
                   fmtValue(m.value) + "\n";
            continue;
        }
        // Histogram: cumulative buckets, then +Inf, _sum, _count.
        uint64_t cum = 0;
        for (size_t i = 0; i < m.hist.bounds.size(); ++i) {
            cum += m.hist.counts[i];
            out += m.name + "_bucket" +
                   labelBlock(m.labels, "le",
                              fmtValue(m.hist.bounds[i])) +
                   " " + std::to_string(cum) + "\n";
        }
        out += m.name + "_bucket" + labelBlock(m.labels, "le", "+Inf") +
               " " + std::to_string(m.hist.count) + "\n";
        out += m.name + "_sum" + labelBlock(m.labels) + " " +
               fmtValue(m.hist.sum) + "\n";
        out += m.name + "_count" + labelBlock(m.labels) + " " +
               std::to_string(m.hist.count) + "\n";
    }
    return out;
}

std::string
prometheusText(const Registry &registry)
{
    return prometheusText(registry.collect());
}

Json
metricsJson(const std::vector<MetricSnapshot> &snapshots)
{
    Json doc = Json::object();
    // collect() is family-major: group consecutive runs of one name.
    for (size_t i = 0; i < snapshots.size();) {
        const MetricSnapshot &head = snapshots[i];
        Json instances = Json::array();
        for (; i < snapshots.size() && snapshots[i].name == head.name;
             ++i) {
            const MetricSnapshot &m = snapshots[i];
            Json entry = Json::object();
            if (!m.labels.empty()) {
                Json lbl = Json::object();
                for (const auto &[k, v] : m.labels)
                    lbl.set(k, v);
                entry.set("labels", std::move(lbl));
            }
            if (m.type != MetricType::Histogram) {
                entry.set("value", m.value);
            } else {
                entry.set("count", m.hist.count);
                entry.set("sum", m.hist.sum);
                entry.set("max", m.hist.maxValue);
                entry.set("p50", m.hist.quantile(50));
                entry.set("p95", m.hist.quantile(95));
                entry.set("p99", m.hist.quantile(99));
                Json buckets = Json::array();
                uint64_t cum = 0;
                for (size_t b = 0; b < m.hist.bounds.size(); ++b) {
                    cum += m.hist.counts[b];
                    if (m.hist.counts[b] == 0)
                        continue; // sparse: only occupied buckets
                    Json bj = Json::object();
                    bj.set("le", m.hist.bounds[b]);
                    bj.set("cumulative", cum);
                    // Slowest traced request that landed in this
                    // bucket (span tracing): the tail-forensics hook
                    // from the live exposition back to a span tree.
                    if (b < m.hist.exemplars.size() &&
                        m.hist.exemplars[b].traceId != 0) {
                        Json ex = Json::object();
                        ex.set("value", m.hist.exemplars[b].value);
                        ex.set("trace", m.hist.exemplars[b].traceId);
                        bj.set("exemplar", std::move(ex));
                    }
                    buckets.push(std::move(bj));
                }
                entry.set("buckets", std::move(buckets));
                if (!m.hist.exemplars.empty() &&
                    m.hist.exemplars.back().traceId != 0) {
                    Json ex = Json::object();
                    ex.set("value", m.hist.exemplars.back().value);
                    ex.set("trace", m.hist.exemplars.back().traceId);
                    entry.set("overflow_exemplar", std::move(ex));
                }
            }
            instances.push(std::move(entry));
        }
        Json f = Json::object();
        f.set("type", metricTypeName(head.type));
        f.set("help", head.help);
        f.set("instances", std::move(instances));
        doc.set(head.name, std::move(f));
    }
    return doc;
}

Json
metricsJson(const Registry &registry)
{
    return metricsJson(registry.collect());
}

// --- Prometheus text-format checker ---

namespace {

struct Parser
{
    const std::string &text;
    size_t pos = 0;
    int line = 1;

    explicit Parser(const std::string &t) : text(t) {}

    Status
    fail(const std::string &why) const
    {
        return Status::invalidArgument(
            bw::detail::format("line %d: %s", line, why.c_str()));
    }
};

bool
parseLabels(const std::string &body, size_t &i, Labels &labels,
            std::string &err)
{
    // body[i] == '{' on entry; consumes through the closing '}'.
    ++i;
    while (i < body.size() && body[i] != '}') {
        size_t k0 = i;
        while (i < body.size() && body[i] != '=')
            ++i;
        std::string key = body.substr(k0, i - k0);
        if (!validLabelName(key)) {
            err = "invalid label name '" + key + "'";
            return false;
        }
        if (i >= body.size() || body[i] != '=' || i + 1 >= body.size() ||
            body[i + 1] != '"') {
            err = "label '" + key + "' missing =\"value\"";
            return false;
        }
        i += 2;
        std::string value;
        while (i < body.size() && body[i] != '"') {
            if (body[i] == '\\' && i + 1 < body.size()) {
                char n = body[i + 1];
                value += n == 'n' ? '\n' : n;
                i += 2;
            } else {
                value += body[i++];
            }
        }
        if (i >= body.size()) {
            err = "unterminated label value";
            return false;
        }
        ++i; // closing quote
        labels.emplace_back(std::move(key), std::move(value));
        if (i < body.size() && body[i] == ',')
            ++i;
    }
    if (i >= body.size()) {
        err = "unterminated label block";
        return false;
    }
    ++i; // '}'
    return true;
}

bool
parseValue(const std::string &s, double &out)
{
    if (s == "+Inf" || s == "Inf") {
        out = HUGE_VAL;
        return true;
    }
    if (s == "-Inf") {
        out = -HUGE_VAL;
        return true;
    }
    if (s == "NaN") {
        out = NAN;
        return true;
    }
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end && *end == '\0' && end != s.c_str();
}

} // namespace

Status
validatePrometheusText(const std::string &text)
{
    Parser p(text);
    std::map<std::string, std::string> family_type;
    // Histogram bookkeeping, keyed by family + non-le labels.
    struct HistState
    {
        double last_le = -HUGE_VAL;
        double last_cum = -1;
        bool saw_inf = false;
        double inf_count = 0;
        double count = -1; //!< the _count sample, when seen
    };
    std::map<std::string, HistState> hists;

    std::istringstream in(text);
    std::string raw;
    for (; std::getline(in, raw); ++p.line) {
        if (raw.empty())
            continue;
        if (raw[0] == '#') {
            std::istringstream ls(raw);
            std::string hash, kind, name;
            ls >> hash >> kind >> name;
            if (kind != "HELP" && kind != "TYPE")
                continue; // other comments are permitted
            if (!validMetricName(name))
                return p.fail("bad metric name in '" + raw + "'");
            if (kind == "TYPE") {
                std::string type;
                ls >> type;
                if (type != "counter" && type != "gauge" &&
                    type != "histogram" && type != "summary" &&
                    type != "untyped") {
                    return p.fail("unknown TYPE '" + type + "'");
                }
                if (family_type.count(name))
                    return p.fail("duplicate TYPE for " + name);
                family_type[name] = type;
            }
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        size_t i = 0;
        while (i < raw.size() && raw[i] != '{' && raw[i] != ' ')
            ++i;
        std::string name = raw.substr(0, i);
        if (!validMetricName(name))
            return p.fail("bad sample metric name '" + name + "'");
        Labels labels;
        if (i < raw.size() && raw[i] == '{') {
            std::string err;
            if (!parseLabels(raw, i, labels, err))
                return p.fail(err);
        }
        if (i >= raw.size() || raw[i] != ' ')
            return p.fail("missing value after '" + name + "'");
        std::istringstream rest(raw.substr(i + 1));
        std::string value_s, timestamp_s, extra;
        rest >> value_s >> timestamp_s >> extra;
        if (!extra.empty())
            return p.fail("trailing garbage '" + extra + "'");
        double value;
        if (!parseValue(value_s, value))
            return p.fail("bad sample value '" + value_s + "'");
        if (!timestamp_s.empty()) {
            double ts;
            if (!parseValue(timestamp_s, ts))
                return p.fail("bad timestamp '" + timestamp_s + "'");
        }

        // Resolve the family: histogram samples use suffixed names.
        std::string family = name;
        std::string suffix;
        for (const char *s : {"_bucket", "_sum", "_count"}) {
            std::string cand = name;
            size_t n = std::string(s).size();
            if (cand.size() > n &&
                cand.compare(cand.size() - n, n, s) == 0) {
                cand.resize(cand.size() - n);
                auto it = family_type.find(cand);
                if (it != family_type.end() &&
                    (it->second == "histogram" ||
                     it->second == "summary")) {
                    family = cand;
                    suffix = s;
                    break;
                }
            }
        }
        auto ft = family_type.find(family);
        if (ft == family_type.end())
            return p.fail("sample '" + name + "' has no # TYPE");

        if (ft->second != "histogram")
            continue;
        if (suffix.empty())
            return p.fail("bare sample '" + name +
                          "' in histogram family");
        // Histogram invariants, per label set (excluding le).
        Labels rest_labels;
        double le = 0;
        bool has_le = false;
        for (const auto &[k, v] : labels) {
            if (k == "le" && suffix == "_bucket") {
                has_le = true;
                if (!parseValue(v, le))
                    return p.fail("bad le '" + v + "'");
            } else {
                rest_labels.emplace_back(k, v);
            }
        }
        HistState &h = hists[family + "\x1e" + labelsKey(rest_labels)];
        if (suffix == "_bucket") {
            if (!has_le)
                return p.fail(name + " bucket without le label");
            if (le <= h.last_le)
                return p.fail(family + " buckets out of le order");
            if (value < h.last_cum)
                return p.fail(family + " bucket counts not cumulative");
            h.last_le = le;
            h.last_cum = value;
            if (std::isinf(le) && le > 0) {
                h.saw_inf = true;
                h.inf_count = value;
            }
        } else if (suffix == "_count") {
            h.count = value;
        }
    }

    for (const auto &[key, h] : hists) {
        std::string family = key.substr(0, key.find('\x1e'));
        if (!h.saw_inf) {
            return Status::invalidArgument(
                "histogram " + family + " has no le=\"+Inf\" bucket");
        }
        if (h.count >= 0 && h.count != h.inf_count) {
            return Status::invalidArgument(
                "histogram " + family +
                " _count disagrees with its +Inf bucket");
        }
    }
    return Status();
}

} // namespace metrics
} // namespace bw
