/**
 * @file
 * Exposition of a metrics::Registry in two machine-readable formats:
 * Prometheus text format 0.0.4 (what a scraper pulls from /metrics)
 * and the repo's ordered Json convention (what BW_*_JSON artifacts and
 * tests consume). Plus a small Prometheus-format checker used by the
 * CI smoke job and the unit tests, so exposition validity is enforced
 * both over the wire and without networking.
 */

#ifndef BW_METRICS_EXPOSITION_H
#define BW_METRICS_EXPOSITION_H

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "metrics/metrics.h"

namespace bw {
namespace metrics {

/**
 * Render @p snapshots (from Registry::collect()) as Prometheus text
 * exposition: one # HELP / # TYPE pair per family, histogram families
 * as cumulative _bucket{le=...} series with a +Inf bucket plus _sum
 * and _count.
 */
std::string prometheusText(const std::vector<MetricSnapshot> &snapshots);

/** Registry::collect() rendered as Prometheus text. */
std::string prometheusText(const Registry &registry);

/**
 * Render @p snapshots as an ordered Json object: one member per
 * family, instances as {labels, value} (counter/gauge) or
 * {labels, count, sum, max, buckets:[{le,count}...]} (histogram).
 */
Json metricsJson(const std::vector<MetricSnapshot> &snapshots);

/** Registry::collect() rendered as Json. */
Json metricsJson(const Registry &registry);

/**
 * Validate @p text as Prometheus text exposition. Checks line syntax
 * (HELP/TYPE comments, sample lines, metric and label names, numeric
 * values), that every sample's family has a preceding # TYPE, and the
 * histogram invariants: each histogram has a le="+Inf" bucket, bucket
 * counts are cumulative (non-decreasing in le order), and _count
 * equals the +Inf bucket. Returns OK or an InvalidArgument status
 * naming the first offending line.
 */
Status validatePrometheusText(const std::string &text);

} // namespace metrics
} // namespace bw

#endif // BW_METRICS_EXPOSITION_H
