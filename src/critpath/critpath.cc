#include "critpath/critpath.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"

namespace bw {

namespace {

/** Function-unit latency of one GIR node (Section III's model). */
Cycles
nodeLatency(const GirNode &n)
{
    switch (n.op) {
      case GirOp::Input:
      case GirOp::ConstVec:
      case GirOp::State:
      case GirOp::Output:
        return 0;
      case GirOp::MatMul: {
        // One multiply plus a binary reduction tree over the dot length.
        uint64_t len = n.weight.cols();
        return 1 + (len > 1 ? ceilLog2(len) : 0);
      }
      default:
        return 1; // point-wise
    }
}

} // namespace

std::vector<Cycles>
asapDepths(const GirGraph &graph)
{
    std::vector<Cycles> depth(graph.size(), 0);
    for (NodeId id : graph.topoOrder()) {
        const GirNode &n = graph.node(id);
        Cycles in = 0;
        for (NodeId p : n.inputs)
            in = std::max(in, depth[p]);
        depth[id] = in + nodeLatency(n);
    }
    return depth;
}

CritPathResult
analyzeCritPath(const GirGraph &graph, uint64_t macs)
{
    BW_ASSERT(macs > 0);
    graph.check();

    CritPathResult r;
    r.opsPerStep = graph.opsPerStep();
    r.matmulOpsPerStep = graph.matmulOpsPerStep();

    // UDM: depth of the step's architecturally visible results (state
    // producers and outputs).
    auto depth = asapDepths(graph);
    Cycles udm = 0;
    for (auto &[state, producer] : graph.stateBindings()) {
        (void)state;
        udm = std::max(udm, depth[producer]);
    }
    for (NodeId out : graph.nodesOf(GirOp::Output))
        udm = std::max(udm, depth[graph.node(out).inputs[0]]);
    if (udm == 0) {
        // Degenerate graph with no outputs: use the deepest node.
        for (Cycles d : depth)
            udm = std::max(udm, d);
    }
    r.udmCycles = udm;

    // SDM: ops issue at the MAC array's rate (2 ops/MAC/cycle); the
    // last results still traverse the remaining dataflow depth.
    Cycles issue = ceilDiv<uint64_t>(r.opsPerStep, 2 * macs);
    r.sdmCycles = issue + (udm > 0 ? udm - 1 : 0);

    // Data: weights plus one step's input activations, 1 byte/element.
    r.dataBytes = graph.weightBytes(8);
    for (NodeId in : graph.nodesOf(GirOp::Input))
        r.dataBytes += graph.node(in).dim;
    return r;
}

Cycles
udmTotal(const CritPathResult &r, unsigned steps)
{
    return r.udmCycles * steps;
}

Cycles
sdmTotal(const CritPathResult &r, unsigned steps)
{
    return r.sdmCycles * steps;
}

} // namespace bw
