#include "critpath/conv_critpath.h"

#include "common/bits.h"
#include "common/logging.h"

namespace bw {

CritPathResult
analyzeConvCritPath(const ConvSpec &spec, uint64_t macs)
{
    BW_ASSERT(macs > 0);
    CritPathResult r;
    r.matmulOpsPerStep = spec.macOps();
    r.opsPerStep = spec.macOps(); // Table I counts MAC ops for CNNs

    // One position: multiply (1) + reduction tree + bias add (1).
    uint64_t len = spec.patchLen();
    r.udmCycles = 1 + (len > 1 ? ceilLog2(len) : 0) + 1;

    Cycles issue = ceilDiv<uint64_t>(r.opsPerStep, 2 * macs);
    r.sdmCycles = issue + r.udmCycles - 1;

    // Weights plus input feature map at one byte per element.
    r.dataBytes = spec.weightCount() + spec.inputCount();
    return r;
}

} // namespace bw
