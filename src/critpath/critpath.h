/**
 * @file
 * Critical-path methodology for latency-aware NPU design (Section III).
 *
 * Two latency-centric metrics computed over a model's dataflow graph,
 * counting only function-unit latencies:
 *
 *  - UDM: cycles to serve one step on an Unconstrained Dataflow Machine
 *    with infinite resources — the ASAP depth of the step's dataflow,
 *    where a length-L dot product costs 1 (multiply) + ceil(log2 L)
 *    (reduction tree) cycles and point-wise operations cost 1 cycle.
 *
 *  - SDM: cycles on a Structurally-constrained Dataflow Machine sharing
 *    the target's multiply-accumulate count: ops issue at the MAC-array
 *    rate (2 ops per MAC per cycle) and the final results still traverse
 *    the remaining dataflow depth, giving
 *        SDM = ceil(total_ops / (2 * macs)) + UDM - 1.
 *    This construction reproduces the paper's Table I cell-for-cell
 *    (LSTM-2000: 352, GRU-2800: 520) and the SDM rows of Table V.
 *
 * Both metrics extend to T-step RNN serving by multiplying the per-step
 * value (the recurrent dependence serializes steps on both machines).
 */

#ifndef BW_CRITPATH_CRITPATH_H
#define BW_CRITPATH_CRITPATH_H

#include "common/units.h"
#include "graph/gir.h"

namespace bw {

/** Critical-path metrics of one model step. */
struct CritPathResult
{
    /** Total arithmetic ops per step (2 per MAC + 1 per point-wise). */
    OpCount opsPerStep = 0;
    /** Matmul-only ops per step. */
    OpCount matmulOpsPerStep = 0;
    /** ASAP dataflow depth with infinite resources. */
    Cycles udmCycles = 0;
    /** Resource-constrained dataflow cycles for the given MAC count. */
    Cycles sdmCycles = 0;
    /** Model data footprint: weights plus one step's input activations
     *  at one byte per element (Table I's "Data" column). */
    uint64_t dataBytes = 0;
};

/**
 * Analyze one step of @p graph against an accelerator with @p macs
 * multiply-accumulate units.
 */
CritPathResult analyzeCritPath(const GirGraph &graph, uint64_t macs);

/** UDM cycles for @p steps recurrent steps. */
Cycles udmTotal(const CritPathResult &r, unsigned steps);

/** SDM cycles for @p steps recurrent steps. */
Cycles sdmTotal(const CritPathResult &r, unsigned steps);

/**
 * Per-node ASAP depths (function-unit latencies only), exposed for the
 * Fig. 2-style sweeps and for tests.
 */
std::vector<Cycles> asapDepths(const GirGraph &graph);

} // namespace bw

#endif // BW_CRITPATH_CRITPATH_H
