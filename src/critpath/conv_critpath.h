/**
 * @file
 * Critical-path analysis of 2-D convolution layers (Table I's CNN rows).
 * Each output position is an independent dot product of length
 * kH*kW*inC followed by a bias add, so the UDM depth is that of a
 * single position while the op count scales with all positions.
 */

#ifndef BW_CRITPATH_CONV_CRITPATH_H
#define BW_CRITPATH_CONV_CRITPATH_H

#include "critpath/critpath.h"
#include "graph/conv.h"

namespace bw {

/** Analyze one conv layer against an accelerator with @p macs MACs. */
CritPathResult analyzeConvCritPath(const ConvSpec &spec, uint64_t macs);

} // namespace bw

#endif // BW_CRITPATH_CONV_CRITPATH_H
