file(REMOVE_RECURSE
  "CMakeFiles/fuzz_compiler_test.dir/fuzz_compiler_test.cc.o"
  "CMakeFiles/fuzz_compiler_test.dir/fuzz_compiler_test.cc.o.d"
  "fuzz_compiler_test"
  "fuzz_compiler_test.pdb"
  "fuzz_compiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
