# Empty compiler generated dependencies file for fuzz_compiler_test.
# This may be replaced when dependencies are built.
