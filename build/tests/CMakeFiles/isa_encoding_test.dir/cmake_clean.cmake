file(REMOVE_RECURSE
  "CMakeFiles/isa_encoding_test.dir/isa_encoding_test.cc.o"
  "CMakeFiles/isa_encoding_test.dir/isa_encoding_test.cc.o.d"
  "isa_encoding_test"
  "isa_encoding_test.pdb"
  "isa_encoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
