# Empty dependencies file for isa_encoding_test.
# This may be replaced when dependencies are built.
