file(REMOVE_RECURSE
  "CMakeFiles/program_fuzz_test.dir/program_fuzz_test.cc.o"
  "CMakeFiles/program_fuzz_test.dir/program_fuzz_test.cc.o.d"
  "program_fuzz_test"
  "program_fuzz_test.pdb"
  "program_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
