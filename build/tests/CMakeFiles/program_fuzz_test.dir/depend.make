# Empty dependencies file for program_fuzz_test.
# This may be replaced when dependencies are built.
