file(REMOVE_RECURSE
  "CMakeFiles/float16_test.dir/float16_test.cc.o"
  "CMakeFiles/float16_test.dir/float16_test.cc.o.d"
  "float16_test"
  "float16_test.pdb"
  "float16_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/float16_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
