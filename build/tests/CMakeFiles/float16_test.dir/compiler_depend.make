# Empty compiler generated dependencies file for float16_test.
# This may be replaced when dependencies are built.
