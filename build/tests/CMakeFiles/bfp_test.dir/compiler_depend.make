# Empty compiler generated dependencies file for bfp_test.
# This may be replaced when dependencies are built.
