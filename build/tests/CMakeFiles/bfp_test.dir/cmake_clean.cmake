file(REMOVE_RECURSE
  "CMakeFiles/bfp_test.dir/bfp_test.cc.o"
  "CMakeFiles/bfp_test.dir/bfp_test.cc.o.d"
  "bfp_test"
  "bfp_test.pdb"
  "bfp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
