# Empty compiler generated dependencies file for deepbench_test.
# This may be replaced when dependencies are built.
