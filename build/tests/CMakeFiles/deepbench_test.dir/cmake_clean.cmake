file(REMOVE_RECURSE
  "CMakeFiles/deepbench_test.dir/deepbench_test.cc.o"
  "CMakeFiles/deepbench_test.dir/deepbench_test.cc.o.d"
  "deepbench_test"
  "deepbench_test.pdb"
  "deepbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
