
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cc" "tests/CMakeFiles/baseline_test.dir/baseline_test.cc.o" "gcc" "tests/CMakeFiles/baseline_test.dir/baseline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/critpath/CMakeFiles/bw_critpath.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/bw_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bw_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/bw_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/bw_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/bw_func.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bw_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/bw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/bfp/CMakeFiles/bw_bfp.dir/DependInfo.cmake"
  "/root/repo/build/src/refmodel/CMakeFiles/bw_refmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bw_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/bw_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bw_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bw_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
