# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/float16_test[1]_include.cmake")
include("/root/repo/build/tests/bfp_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/isa_encoding_test[1]_include.cmake")
include("/root/repo/build/tests/func_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/critpath_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/conv_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/deepbench_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_compiler_test[1]_include.cmake")
include("/root/repo/build/tests/program_fuzz_test[1]_include.cmake")
