# Empty dependencies file for bw_bfp.
# This may be replaced when dependencies are built.
