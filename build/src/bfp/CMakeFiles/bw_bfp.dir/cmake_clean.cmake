file(REMOVE_RECURSE
  "CMakeFiles/bw_bfp.dir/bfp.cc.o"
  "CMakeFiles/bw_bfp.dir/bfp.cc.o.d"
  "CMakeFiles/bw_bfp.dir/float16.cc.o"
  "CMakeFiles/bw_bfp.dir/float16.cc.o.d"
  "libbw_bfp.a"
  "libbw_bfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_bfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
