file(REMOVE_RECURSE
  "libbw_bfp.a"
)
