
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bfp/bfp.cc" "src/bfp/CMakeFiles/bw_bfp.dir/bfp.cc.o" "gcc" "src/bfp/CMakeFiles/bw_bfp.dir/bfp.cc.o.d"
  "/root/repo/src/bfp/float16.cc" "src/bfp/CMakeFiles/bw_bfp.dir/float16.cc.o" "gcc" "src/bfp/CMakeFiles/bw_bfp.dir/float16.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
