# CMake generated Testfile for 
# Source directory: /root/repo/src/bfp
# Build directory: /root/repo/build/src/bfp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
