# Empty compiler generated dependencies file for bw_workloads.
# This may be replaced when dependencies are built.
