
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/deepbench.cc" "src/workloads/CMakeFiles/bw_workloads.dir/deepbench.cc.o" "gcc" "src/workloads/CMakeFiles/bw_workloads.dir/deepbench.cc.o.d"
  "/root/repo/src/workloads/paper_data.cc" "src/workloads/CMakeFiles/bw_workloads.dir/paper_data.cc.o" "gcc" "src/workloads/CMakeFiles/bw_workloads.dir/paper_data.cc.o.d"
  "/root/repo/src/workloads/resnet50.cc" "src/workloads/CMakeFiles/bw_workloads.dir/resnet50.cc.o" "gcc" "src/workloads/CMakeFiles/bw_workloads.dir/resnet50.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bw_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bw_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
