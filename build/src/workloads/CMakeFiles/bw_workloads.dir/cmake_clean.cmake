file(REMOVE_RECURSE
  "CMakeFiles/bw_workloads.dir/deepbench.cc.o"
  "CMakeFiles/bw_workloads.dir/deepbench.cc.o.d"
  "CMakeFiles/bw_workloads.dir/paper_data.cc.o"
  "CMakeFiles/bw_workloads.dir/paper_data.cc.o.d"
  "CMakeFiles/bw_workloads.dir/resnet50.cc.o"
  "CMakeFiles/bw_workloads.dir/resnet50.cc.o.d"
  "libbw_workloads.a"
  "libbw_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
