file(REMOVE_RECURSE
  "libbw_workloads.a"
)
