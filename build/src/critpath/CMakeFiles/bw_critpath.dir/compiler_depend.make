# Empty compiler generated dependencies file for bw_critpath.
# This may be replaced when dependencies are built.
