file(REMOVE_RECURSE
  "libbw_critpath.a"
)
