
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/critpath/conv_critpath.cc" "src/critpath/CMakeFiles/bw_critpath.dir/conv_critpath.cc.o" "gcc" "src/critpath/CMakeFiles/bw_critpath.dir/conv_critpath.cc.o.d"
  "/root/repo/src/critpath/critpath.cc" "src/critpath/CMakeFiles/bw_critpath.dir/critpath.cc.o" "gcc" "src/critpath/CMakeFiles/bw_critpath.dir/critpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bw_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bw_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
