file(REMOVE_RECURSE
  "CMakeFiles/bw_critpath.dir/conv_critpath.cc.o"
  "CMakeFiles/bw_critpath.dir/conv_critpath.cc.o.d"
  "CMakeFiles/bw_critpath.dir/critpath.cc.o"
  "CMakeFiles/bw_critpath.dir/critpath.cc.o.d"
  "libbw_critpath.a"
  "libbw_critpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_critpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
