# Empty dependencies file for bw_timing.
# This may be replaced when dependencies are built.
