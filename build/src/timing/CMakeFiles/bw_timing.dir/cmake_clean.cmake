file(REMOVE_RECURSE
  "CMakeFiles/bw_timing.dir/npu_timing.cc.o"
  "CMakeFiles/bw_timing.dir/npu_timing.cc.o.d"
  "libbw_timing.a"
  "libbw_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
