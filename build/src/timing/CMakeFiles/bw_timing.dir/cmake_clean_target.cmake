file(REMOVE_RECURSE
  "libbw_timing.a"
)
