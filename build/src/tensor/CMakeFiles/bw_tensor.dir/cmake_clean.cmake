file(REMOVE_RECURSE
  "CMakeFiles/bw_tensor.dir/tensor.cc.o"
  "CMakeFiles/bw_tensor.dir/tensor.cc.o.d"
  "libbw_tensor.a"
  "libbw_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
