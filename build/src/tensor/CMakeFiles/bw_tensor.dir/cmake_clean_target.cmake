file(REMOVE_RECURSE
  "libbw_tensor.a"
)
