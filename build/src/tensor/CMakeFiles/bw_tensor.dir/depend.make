# Empty dependencies file for bw_tensor.
# This may be replaced when dependencies are built.
