file(REMOVE_RECURSE
  "libbw_func.a"
)
