file(REMOVE_RECURSE
  "CMakeFiles/bw_func.dir/machine.cc.o"
  "CMakeFiles/bw_func.dir/machine.cc.o.d"
  "CMakeFiles/bw_func.dir/regfile.cc.o"
  "CMakeFiles/bw_func.dir/regfile.cc.o.d"
  "libbw_func.a"
  "libbw_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
