
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/func/machine.cc" "src/func/CMakeFiles/bw_func.dir/machine.cc.o" "gcc" "src/func/CMakeFiles/bw_func.dir/machine.cc.o.d"
  "/root/repo/src/func/regfile.cc" "src/func/CMakeFiles/bw_func.dir/regfile.cc.o" "gcc" "src/func/CMakeFiles/bw_func.dir/regfile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bfp/CMakeFiles/bw_bfp.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bw_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/bw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bw_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
