# Empty dependencies file for bw_func.
# This may be replaced when dependencies are built.
