# Empty dependencies file for bw_graph.
# This may be replaced when dependencies are built.
