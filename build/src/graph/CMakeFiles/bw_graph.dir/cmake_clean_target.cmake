file(REMOVE_RECURSE
  "libbw_graph.a"
)
