file(REMOVE_RECURSE
  "CMakeFiles/bw_graph.dir/builders.cc.o"
  "CMakeFiles/bw_graph.dir/builders.cc.o.d"
  "CMakeFiles/bw_graph.dir/gir.cc.o"
  "CMakeFiles/bw_graph.dir/gir.cc.o.d"
  "libbw_graph.a"
  "libbw_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
