file(REMOVE_RECURSE
  "CMakeFiles/bw_runtime.dir/multi_fpga.cc.o"
  "CMakeFiles/bw_runtime.dir/multi_fpga.cc.o.d"
  "CMakeFiles/bw_runtime.dir/serving.cc.o"
  "CMakeFiles/bw_runtime.dir/serving.cc.o.d"
  "libbw_runtime.a"
  "libbw_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
