# Empty dependencies file for bw_runtime.
# This may be replaced when dependencies are built.
