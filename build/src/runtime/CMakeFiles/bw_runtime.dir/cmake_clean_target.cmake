file(REMOVE_RECURSE
  "libbw_runtime.a"
)
