# Empty compiler generated dependencies file for bw_baseline.
# This may be replaced when dependencies are built.
