file(REMOVE_RECURSE
  "CMakeFiles/bw_baseline.dir/gpu_model.cc.o"
  "CMakeFiles/bw_baseline.dir/gpu_model.cc.o.d"
  "libbw_baseline.a"
  "libbw_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
