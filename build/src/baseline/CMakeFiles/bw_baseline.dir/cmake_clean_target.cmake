file(REMOVE_RECURSE
  "libbw_baseline.a"
)
