file(REMOVE_RECURSE
  "libbw_common.a"
)
