# Empty compiler generated dependencies file for bw_common.
# This may be replaced when dependencies are built.
