file(REMOVE_RECURSE
  "CMakeFiles/bw_common.dir/logging.cc.o"
  "CMakeFiles/bw_common.dir/logging.cc.o.d"
  "CMakeFiles/bw_common.dir/stats.cc.o"
  "CMakeFiles/bw_common.dir/stats.cc.o.d"
  "CMakeFiles/bw_common.dir/table.cc.o"
  "CMakeFiles/bw_common.dir/table.cc.o.d"
  "libbw_common.a"
  "libbw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
