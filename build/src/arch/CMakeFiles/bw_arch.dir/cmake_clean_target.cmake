file(REMOVE_RECURSE
  "libbw_arch.a"
)
