
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/mem_id.cc" "src/arch/CMakeFiles/bw_arch.dir/mem_id.cc.o" "gcc" "src/arch/CMakeFiles/bw_arch.dir/mem_id.cc.o.d"
  "/root/repo/src/arch/npu_config.cc" "src/arch/CMakeFiles/bw_arch.dir/npu_config.cc.o" "gcc" "src/arch/CMakeFiles/bw_arch.dir/npu_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bfp/CMakeFiles/bw_bfp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
