file(REMOVE_RECURSE
  "CMakeFiles/bw_arch.dir/mem_id.cc.o"
  "CMakeFiles/bw_arch.dir/mem_id.cc.o.d"
  "CMakeFiles/bw_arch.dir/npu_config.cc.o"
  "CMakeFiles/bw_arch.dir/npu_config.cc.o.d"
  "libbw_arch.a"
  "libbw_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
