# Empty dependencies file for bw_arch.
# This may be replaced when dependencies are built.
