file(REMOVE_RECURSE
  "libbw_synth.a"
)
