file(REMOVE_RECURSE
  "CMakeFiles/bw_synth.dir/device.cc.o"
  "CMakeFiles/bw_synth.dir/device.cc.o.d"
  "CMakeFiles/bw_synth.dir/resource_model.cc.o"
  "CMakeFiles/bw_synth.dir/resource_model.cc.o.d"
  "libbw_synth.a"
  "libbw_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
