# Empty dependencies file for bw_synth.
# This may be replaced when dependencies are built.
