# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("bfp")
subdirs("tensor")
subdirs("arch")
subdirs("isa")
subdirs("func")
subdirs("timing")
subdirs("critpath")
subdirs("graph")
subdirs("compiler")
subdirs("refmodel")
subdirs("baseline")
subdirs("synth")
subdirs("workloads")
subdirs("runtime")
