
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/analysis.cc" "src/isa/CMakeFiles/bw_isa.dir/analysis.cc.o" "gcc" "src/isa/CMakeFiles/bw_isa.dir/analysis.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/isa/CMakeFiles/bw_isa.dir/assembler.cc.o" "gcc" "src/isa/CMakeFiles/bw_isa.dir/assembler.cc.o.d"
  "/root/repo/src/isa/builder.cc" "src/isa/CMakeFiles/bw_isa.dir/builder.cc.o" "gcc" "src/isa/CMakeFiles/bw_isa.dir/builder.cc.o.d"
  "/root/repo/src/isa/encoding.cc" "src/isa/CMakeFiles/bw_isa.dir/encoding.cc.o" "gcc" "src/isa/CMakeFiles/bw_isa.dir/encoding.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/isa/CMakeFiles/bw_isa.dir/instruction.cc.o" "gcc" "src/isa/CMakeFiles/bw_isa.dir/instruction.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/isa/CMakeFiles/bw_isa.dir/opcode.cc.o" "gcc" "src/isa/CMakeFiles/bw_isa.dir/opcode.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/isa/CMakeFiles/bw_isa.dir/program.cc.o" "gcc" "src/isa/CMakeFiles/bw_isa.dir/program.cc.o.d"
  "/root/repo/src/isa/validate.cc" "src/isa/CMakeFiles/bw_isa.dir/validate.cc.o" "gcc" "src/isa/CMakeFiles/bw_isa.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/bw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/bfp/CMakeFiles/bw_bfp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
