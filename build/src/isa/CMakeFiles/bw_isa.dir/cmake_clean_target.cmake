file(REMOVE_RECURSE
  "libbw_isa.a"
)
