file(REMOVE_RECURSE
  "CMakeFiles/bw_isa.dir/analysis.cc.o"
  "CMakeFiles/bw_isa.dir/analysis.cc.o.d"
  "CMakeFiles/bw_isa.dir/assembler.cc.o"
  "CMakeFiles/bw_isa.dir/assembler.cc.o.d"
  "CMakeFiles/bw_isa.dir/builder.cc.o"
  "CMakeFiles/bw_isa.dir/builder.cc.o.d"
  "CMakeFiles/bw_isa.dir/encoding.cc.o"
  "CMakeFiles/bw_isa.dir/encoding.cc.o.d"
  "CMakeFiles/bw_isa.dir/instruction.cc.o"
  "CMakeFiles/bw_isa.dir/instruction.cc.o.d"
  "CMakeFiles/bw_isa.dir/opcode.cc.o"
  "CMakeFiles/bw_isa.dir/opcode.cc.o.d"
  "CMakeFiles/bw_isa.dir/program.cc.o"
  "CMakeFiles/bw_isa.dir/program.cc.o.d"
  "CMakeFiles/bw_isa.dir/validate.cc.o"
  "CMakeFiles/bw_isa.dir/validate.cc.o.d"
  "libbw_isa.a"
  "libbw_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
