# Empty compiler generated dependencies file for bw_isa.
# This may be replaced when dependencies are built.
