file(REMOVE_RECURSE
  "CMakeFiles/bw_refmodel.dir/conv_ref.cc.o"
  "CMakeFiles/bw_refmodel.dir/conv_ref.cc.o.d"
  "CMakeFiles/bw_refmodel.dir/gir_interp.cc.o"
  "CMakeFiles/bw_refmodel.dir/gir_interp.cc.o.d"
  "CMakeFiles/bw_refmodel.dir/rnn_ref.cc.o"
  "CMakeFiles/bw_refmodel.dir/rnn_ref.cc.o.d"
  "libbw_refmodel.a"
  "libbw_refmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_refmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
