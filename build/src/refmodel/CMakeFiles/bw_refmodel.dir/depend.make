# Empty dependencies file for bw_refmodel.
# This may be replaced when dependencies are built.
