
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/refmodel/conv_ref.cc" "src/refmodel/CMakeFiles/bw_refmodel.dir/conv_ref.cc.o" "gcc" "src/refmodel/CMakeFiles/bw_refmodel.dir/conv_ref.cc.o.d"
  "/root/repo/src/refmodel/gir_interp.cc" "src/refmodel/CMakeFiles/bw_refmodel.dir/gir_interp.cc.o" "gcc" "src/refmodel/CMakeFiles/bw_refmodel.dir/gir_interp.cc.o.d"
  "/root/repo/src/refmodel/rnn_ref.cc" "src/refmodel/CMakeFiles/bw_refmodel.dir/rnn_ref.cc.o" "gcc" "src/refmodel/CMakeFiles/bw_refmodel.dir/rnn_ref.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bw_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bw_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
