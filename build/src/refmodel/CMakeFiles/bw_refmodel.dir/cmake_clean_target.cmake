file(REMOVE_RECURSE
  "libbw_refmodel.a"
)
