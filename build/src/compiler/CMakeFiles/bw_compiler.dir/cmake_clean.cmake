file(REMOVE_RECURSE
  "CMakeFiles/bw_compiler.dir/conv_lowering.cc.o"
  "CMakeFiles/bw_compiler.dir/conv_lowering.cc.o.d"
  "CMakeFiles/bw_compiler.dir/lowering.cc.o"
  "CMakeFiles/bw_compiler.dir/lowering.cc.o.d"
  "libbw_compiler.a"
  "libbw_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
