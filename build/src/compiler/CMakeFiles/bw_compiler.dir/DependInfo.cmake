
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/conv_lowering.cc" "src/compiler/CMakeFiles/bw_compiler.dir/conv_lowering.cc.o" "gcc" "src/compiler/CMakeFiles/bw_compiler.dir/conv_lowering.cc.o.d"
  "/root/repo/src/compiler/lowering.cc" "src/compiler/CMakeFiles/bw_compiler.dir/lowering.cc.o" "gcc" "src/compiler/CMakeFiles/bw_compiler.dir/lowering.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/bw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bw_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/bw_func.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bw_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bw_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/refmodel/CMakeFiles/bw_refmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/bfp/CMakeFiles/bw_bfp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
