# Empty dependencies file for bw_compiler.
# This may be replaced when dependencies are built.
