file(REMOVE_RECURSE
  "libbw_compiler.a"
)
