file(REMOVE_RECURSE
  "CMakeFiles/fig2_lstm_critpath.dir/fig2_lstm_critpath.cc.o"
  "CMakeFiles/fig2_lstm_critpath.dir/fig2_lstm_critpath.cc.o.d"
  "fig2_lstm_critpath"
  "fig2_lstm_critpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_lstm_critpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
