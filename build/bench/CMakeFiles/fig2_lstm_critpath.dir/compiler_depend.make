# Empty compiler generated dependencies file for fig2_lstm_critpath.
# This may be replaced when dependencies are built.
