# Empty dependencies file for fig7_utilization.
# This may be replaced when dependencies are built.
