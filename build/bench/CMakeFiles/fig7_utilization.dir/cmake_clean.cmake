file(REMOVE_RECURSE
  "CMakeFiles/fig7_utilization.dir/fig7_utilization.cc.o"
  "CMakeFiles/fig7_utilization.dir/fig7_utilization.cc.o.d"
  "fig7_utilization"
  "fig7_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
