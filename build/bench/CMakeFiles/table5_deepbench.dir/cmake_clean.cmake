file(REMOVE_RECURSE
  "CMakeFiles/table5_deepbench.dir/table5_deepbench.cc.o"
  "CMakeFiles/table5_deepbench.dir/table5_deepbench.cc.o.d"
  "table5_deepbench"
  "table5_deepbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_deepbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
