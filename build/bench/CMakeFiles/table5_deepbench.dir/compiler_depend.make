# Empty compiler generated dependencies file for table5_deepbench.
# This may be replaced when dependencies are built.
