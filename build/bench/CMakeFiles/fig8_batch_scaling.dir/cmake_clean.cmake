file(REMOVE_RECURSE
  "CMakeFiles/fig8_batch_scaling.dir/fig8_batch_scaling.cc.o"
  "CMakeFiles/fig8_batch_scaling.dir/fig8_batch_scaling.cc.o.d"
  "fig8_batch_scaling"
  "fig8_batch_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_batch_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
