# Empty dependencies file for fig8_batch_scaling.
# This may be replaced when dependencies are built.
