file(REMOVE_RECURSE
  "CMakeFiles/future_batch_interleave.dir/future_batch_interleave.cc.o"
  "CMakeFiles/future_batch_interleave.dir/future_batch_interleave.cc.o.d"
  "future_batch_interleave"
  "future_batch_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_batch_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
