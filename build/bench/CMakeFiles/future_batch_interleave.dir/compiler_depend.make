# Empty compiler generated dependencies file for future_batch_interleave.
# This may be replaced when dependencies are built.
