file(REMOVE_RECURSE
  "CMakeFiles/table1_critpath.dir/table1_critpath.cc.o"
  "CMakeFiles/table1_critpath.dir/table1_critpath.cc.o.d"
  "table1_critpath"
  "table1_critpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_critpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
