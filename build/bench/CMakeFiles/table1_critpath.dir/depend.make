# Empty dependencies file for table1_critpath.
# This may be replaced when dependencies are built.
