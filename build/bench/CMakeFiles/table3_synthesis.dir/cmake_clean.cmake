file(REMOVE_RECURSE
  "CMakeFiles/table3_synthesis.dir/table3_synthesis.cc.o"
  "CMakeFiles/table3_synthesis.dir/table3_synthesis.cc.o.d"
  "table3_synthesis"
  "table3_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
