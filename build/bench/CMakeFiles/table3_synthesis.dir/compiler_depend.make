# Empty compiler generated dependencies file for table3_synthesis.
# This may be replaced when dependencies are built.
