file(REMOVE_RECURSE
  "CMakeFiles/table6_resnet50.dir/table6_resnet50.cc.o"
  "CMakeFiles/table6_resnet50.dir/table6_resnet50.cc.o.d"
  "table6_resnet50"
  "table6_resnet50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_resnet50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
