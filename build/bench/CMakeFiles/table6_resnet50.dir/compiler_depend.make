# Empty compiler generated dependencies file for table6_resnet50.
# This may be replaced when dependencies are built.
