file(REMOVE_RECURSE
  "CMakeFiles/bfp_accuracy.dir/bfp_accuracy.cc.o"
  "CMakeFiles/bfp_accuracy.dir/bfp_accuracy.cc.o.d"
  "bfp_accuracy"
  "bfp_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfp_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
