# Empty compiler generated dependencies file for bfp_accuracy.
# This may be replaced when dependencies are built.
