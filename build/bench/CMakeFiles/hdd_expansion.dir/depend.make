# Empty dependencies file for hdd_expansion.
# This may be replaced when dependencies are built.
