file(REMOVE_RECURSE
  "CMakeFiles/hdd_expansion.dir/hdd_expansion.cc.o"
  "CMakeFiles/hdd_expansion.dir/hdd_expansion.cc.o.d"
  "hdd_expansion"
  "hdd_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
