file(REMOVE_RECURSE
  "CMakeFiles/speech_service.dir/speech_service.cpp.o"
  "CMakeFiles/speech_service.dir/speech_service.cpp.o.d"
  "speech_service"
  "speech_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speech_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
