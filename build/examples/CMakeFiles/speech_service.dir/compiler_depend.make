# Empty compiler generated dependencies file for speech_service.
# This may be replaced when dependencies are built.
