# Empty compiler generated dependencies file for resnet50_featurizer.
# This may be replaced when dependencies are built.
