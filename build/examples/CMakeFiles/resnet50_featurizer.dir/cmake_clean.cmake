file(REMOVE_RECURSE
  "CMakeFiles/resnet50_featurizer.dir/resnet50_featurizer.cpp.o"
  "CMakeFiles/resnet50_featurizer.dir/resnet50_featurizer.cpp.o.d"
  "resnet50_featurizer"
  "resnet50_featurizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet50_featurizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
