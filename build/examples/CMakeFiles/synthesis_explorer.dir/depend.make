# Empty dependencies file for synthesis_explorer.
# This may be replaced when dependencies are built.
