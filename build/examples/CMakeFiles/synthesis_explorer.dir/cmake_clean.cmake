file(REMOVE_RECURSE
  "CMakeFiles/synthesis_explorer.dir/synthesis_explorer.cpp.o"
  "CMakeFiles/synthesis_explorer.dir/synthesis_explorer.cpp.o.d"
  "synthesis_explorer"
  "synthesis_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
