file(REMOVE_RECURSE
  "CMakeFiles/isa_tour.dir/isa_tour.cpp.o"
  "CMakeFiles/isa_tour.dir/isa_tour.cpp.o.d"
  "isa_tour"
  "isa_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
