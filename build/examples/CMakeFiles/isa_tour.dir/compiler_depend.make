# Empty compiler generated dependencies file for isa_tour.
# This may be replaced when dependencies are built.
