file(REMOVE_RECURSE
  "CMakeFiles/mlp_ranker.dir/mlp_ranker.cpp.o"
  "CMakeFiles/mlp_ranker.dir/mlp_ranker.cpp.o.d"
  "mlp_ranker"
  "mlp_ranker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_ranker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
