# Empty dependencies file for mlp_ranker.
# This may be replaced when dependencies are built.
