file(REMOVE_RECURSE
  "CMakeFiles/bidirectional_rnn.dir/bidirectional_rnn.cpp.o"
  "CMakeFiles/bidirectional_rnn.dir/bidirectional_rnn.cpp.o.d"
  "bidirectional_rnn"
  "bidirectional_rnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bidirectional_rnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
