# Empty dependencies file for bidirectional_rnn.
# This may be replaced when dependencies are built.
